package experiments

import (
	"fmt"
	"strings"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/core"
)

// AblationRow compares one DDNN variant against the paper's default.
type AblationRow struct {
	Name           string
	LocalAcc       float64
	CloudAcc       float64
	Overall        float64 // staged accuracy at T=0.8
	DeviceMemBytes int
	CloudMemBytes  int
}

// MixedPrecisionAblation implements the §VI future-work proposal: keep the
// binary device sections (required by device memory limits) but let the
// cloud use floating-point layers. It trains the all-binary baseline and
// the mixed-precision variant and compares accuracy and memory.
func (r *Runner) MixedPrecisionAblation() ([]AblationRow, error) {
	variants := []struct {
		name       string
		floatCloud bool
	}{
		{"binary cloud (paper default)", false},
		{"float cloud (mixed precision)", true},
	}
	pol := branchy.NewPolicy(0.8, 1)
	rows := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		m, err := r.variantModel(v.floatCloud)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		res := m.Evaluate(r.test, nil, r.opts.BatchSize)
		rows = append(rows, AblationRow{
			Name:           v.name,
			LocalAcc:       res.LocalAccuracy(),
			CloudAcc:       res.CloudAccuracy(),
			Overall:        res.OverallAccuracy(pol),
			DeviceMemBytes: m.DeviceMemoryBytes(),
			CloudMemBytes:  m.CloudMemoryBytes(),
		})
		r.logf("ablation %s: local %.3f cloud %.3f overall %.3f", v.name, rows[len(rows)-1].LocalAcc, rows[len(rows)-1].CloudAcc, rows[len(rows)-1].Overall)
	}
	return rows, nil
}

func (r *Runner) variantModel(floatCloud bool) (*core.Model, error) {
	if !floatCloud {
		return r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	}
	key := "mixed-precision"
	r.mu.Lock()
	m, ok := r.models[key]
	r.mu.Unlock()
	if ok {
		return m, nil
	}
	cfg := r.opts.Model
	cfg.LocalAgg, cfg.CloudAgg = agg.MP, agg.CC
	cfg.FloatCloud = true
	m, err := core.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	r.logf("training mixed-precision DDNN (%d epochs)", r.opts.Epochs)
	tc := core.DefaultTrainConfig()
	tc.Epochs = r.opts.Epochs
	tc.BatchSize = r.opts.BatchSize
	if _, err := m.Train(r.train, tc); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.models[key] = m
	r.mu.Unlock()
	return m, nil
}

// FormatAblation renders the mixed-precision comparison.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Variant                          Local  Cloud  Overall (%)  DevMem (B)  CloudMem (B)\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-32s %5.1f %6.1f %9.1f %10d %12d\n",
			row.Name, row.LocalAcc*100, row.CloudAcc*100, row.Overall*100,
			row.DeviceMemBytes, row.CloudMemBytes)
	}
	return sb.String()
}

// EdgeHierarchyRow reports the three-exit hierarchy of Fig. 2(d)/(e).
type EdgeHierarchyRow struct {
	LocalAcc, EdgeAcc, CloudAcc float64
	Overall                     float64 // staged with T_local=0.8, T_edge=0.8
	ExitFractions               []float64
}

// edgeModel trains (or returns the cached) device-edge-cloud DDNN of
// configuration (e) of Fig. 2, shared by every edge-tier experiment.
func (r *Runner) edgeModel() (*core.Model, error) {
	key := "edge-hierarchy"
	r.mu.Lock()
	m, ok := r.models[key]
	r.mu.Unlock()
	if ok {
		return m, nil
	}
	cfg := r.opts.Model
	cfg.UseEdge = true
	cfg.LocalAgg, cfg.EdgeAgg, cfg.CloudAgg = agg.MP, agg.CC, agg.CC
	m, err := core.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	r.logf("training device-edge-cloud DDNN (%d epochs)", r.opts.Epochs)
	tc := core.DefaultTrainConfig()
	tc.Epochs = r.opts.Epochs
	tc.BatchSize = r.opts.BatchSize
	if _, err := m.Train(r.train, tc); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.models[key] = m
	r.mu.Unlock()
	return m, nil
}

// EdgeHierarchy trains a device-edge-cloud DDNN (configuration (e) of
// Fig. 2) and reports accuracy at all three exits plus staged inference
// across the full hierarchy. The paper evaluates configuration (c) only
// and leaves the edge tier as a described capability; this experiment
// exercises it end to end.
func (r *Runner) EdgeHierarchy() (*EdgeHierarchyRow, error) {
	m, err := r.edgeModel()
	if err != nil {
		return nil, err
	}
	res := m.Evaluate(r.test, nil, r.opts.BatchSize)
	pol := branchy.NewPolicy(0.8, 0.8, 1)
	return &EdgeHierarchyRow{
		LocalAcc:      res.LocalAccuracy(),
		EdgeAcc:       res.EdgeAccuracy(),
		CloudAcc:      res.CloudAccuracy(),
		Overall:       res.OverallAccuracy(pol),
		ExitFractions: res.ExitFractions(pol),
	}, nil
}

// FormatEdgeHierarchy renders the three-exit report.
func FormatEdgeHierarchy(row *EdgeHierarchyRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "local exit accuracy:  %.1f%%\n", row.LocalAcc*100)
	fmt.Fprintf(&sb, "edge exit accuracy:   %.1f%%\n", row.EdgeAcc*100)
	fmt.Fprintf(&sb, "cloud exit accuracy:  %.1f%%\n", row.CloudAcc*100)
	fmt.Fprintf(&sb, "staged overall:       %.1f%% (exits local/edge/cloud: %.0f%%/%.0f%%/%.0f%%)\n",
		row.Overall*100, row.ExitFractions[0]*100, row.ExitFractions[1]*100, row.ExitFractions[2]*100)
	return sb.String()
}
