package experiments

import (
	"strings"
	"sync"
	"testing"

	"github.com/ddnn/ddnn-go/internal/dataset"
)

// tinyRunner shares one reduced-scale runner across the tests; the tests
// check harness invariants, not model quality.
var (
	tinyOnce   sync.Once
	tinyRunner *Runner
)

func runner(t *testing.T) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment harness tests train models; skipped in -short mode")
	}
	tinyOnce.Do(func() {
		opts := QuickOptions()
		opts.Epochs = 3
		opts.IndividualEpochs = 2
		opts.Data.Train, opts.Data.Test = 120, 40
		r, err := NewRunner(opts)
		if err != nil {
			panic(err)
		}
		tinyRunner = r
	})
	return tinyRunner
}

func TestNewRunnerRejectsBadData(t *testing.T) {
	opts := DefaultOptions()
	opts.Data.Train = 0
	if _, err := NewRunner(opts); err == nil {
		t.Error("NewRunner accepted invalid dataset config")
	}
}

func TestTableIShape(t *testing.T) {
	r := runner(t)
	rows, err := r.TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("Table I has %d rows, want 9", len(rows))
	}
	seen := make(map[string]bool)
	for _, row := range rows {
		if seen[row.Schemes()] {
			t.Errorf("duplicate scheme pair %s", row.Schemes())
		}
		seen[row.Schemes()] = true
		for _, acc := range []float64{row.LocalAcc, row.CloudAcc} {
			if acc < 0 || acc > 1 {
				t.Errorf("%s accuracy %g out of range", row.Schemes(), acc)
			}
		}
	}
	if !seen["MP-CC"] || !seen["CC-MP"] {
		t.Error("missing scheme pairs")
	}
	out := FormatTableI(rows)
	if !strings.Contains(out, "MP-CC") {
		t.Error("FormatTableI missing scheme column")
	}
}

func TestThresholdSweepInvariants(t *testing.T) {
	r := runner(t)
	grid := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	rows, err := r.ThresholdSweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(grid) {
		t.Fatalf("got %d rows, want %d", len(rows), len(grid))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].LocalExitPct < rows[i-1].LocalExitPct {
			t.Errorf("local exit %% must be non-decreasing in T: %g then %g", rows[i-1].LocalExitPct, rows[i].LocalExitPct)
		}
		if rows[i].CommBytes > rows[i-1].CommBytes {
			t.Errorf("comm must be non-increasing in T: %g then %g", rows[i-1].CommBytes, rows[i].CommBytes)
		}
	}
	last := rows[len(rows)-1]
	if last.LocalExitPct != 100 {
		t.Errorf("T=1 exits %.2f%%, want 100%%", last.LocalExitPct)
	}
	if last.CommBytes != 12 {
		t.Errorf("T=1 comm = %g B, want 12 (4·|C|)", last.CommBytes)
	}
	if rows[0].CommBytes != 140 {
		t.Errorf("T=0 comm = %g B, want 140 (12 + 4·256/8)", rows[0].CommBytes)
	}
	best := BestThreshold(rows)
	for _, row := range rows {
		if row.OverallAcc > best.OverallAcc {
			t.Errorf("BestThreshold missed better row at T=%g", row.T)
		}
	}
}

func TestClassDistributionMatchesDataset(t *testing.T) {
	r := runner(t)
	stats := r.ClassDistribution()
	if len(stats) != dataset.NumDevices {
		t.Fatalf("got %d devices, want %d", len(stats), dataset.NumDevices)
	}
	for d, st := range stats {
		total := st.NotPresent
		for _, c := range st.PerClass {
			total += c
		}
		if total != r.Train().Len() {
			t.Errorf("device %d counts sum to %d, want %d", d, total, r.Train().Len())
		}
	}
	out := FormatClassDistribution(stats)
	if !strings.Contains(out, "Not-present") {
		t.Error("FormatClassDistribution missing header")
	}
}

func TestIndividualAccuraciesCachedAndOrdered(t *testing.T) {
	r := runner(t)
	a, err := r.IndividualAccuracies()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.IndividualAccuracies()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("IndividualAccuracies not cached deterministically")
		}
	}
	order, err := r.devicesWorstToBest()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if a[order[i]] < a[order[i-1]] {
			t.Error("devicesWorstToBest not sorted ascending")
		}
	}
}

func TestDeviceScalingShape(t *testing.T) {
	r := runner(t)
	points, err := r.DeviceScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != dataset.NumDevices {
		t.Fatalf("got %d points, want %d", len(points), dataset.NumDevices)
	}
	for i, p := range points {
		if p.Devices != i+1 {
			t.Errorf("point %d has device count %d", i, p.Devices)
		}
		if i > 0 && p.Individual < points[i-1].Individual {
			t.Error("individual accuracies must be non-decreasing (worst→best order)")
		}
	}
}

func TestCloudOffloadingShape(t *testing.T) {
	r := runner(t)
	points, err := r.CloudOffloading([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if points[1].CommBytes <= points[0].CommBytes {
		t.Errorf("comm must grow with filters: f=1 %g B vs f=2 %g B", points[0].CommBytes, points[1].CommBytes)
	}
	for _, p := range points {
		if p.LocalExitPct < 70 {
			t.Errorf("f=%d local exit %.1f%%, calibration target is ≈75%%", p.Filters, p.LocalExitPct)
		}
		if p.DeviceMemByte >= 2048 {
			t.Errorf("f=%d device memory %d B, must stay under 2 KB", p.Filters, p.DeviceMemByte)
		}
	}
}

func TestFaultToleranceShape(t *testing.T) {
	r := runner(t)
	points, err := r.FaultTolerance()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != dataset.NumDevices {
		t.Fatalf("got %d points, want %d", len(points), dataset.NumDevices)
	}
	for _, p := range points {
		if p.Overall < 0.2 {
			t.Errorf("failing device %d collapsed overall accuracy to %g", p.FailedDevice, p.Overall)
		}
	}
}

func TestMultiFailureDegradesMonotonically(t *testing.T) {
	r := runner(t)
	points, err := r.MultiFailure(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4 (0..3 failures)", len(points))
	}
	// Allow small non-monotonicity from the tiny model, but the 3-failure
	// case must not beat the healthy system by a margin.
	if points[3].Overall > points[0].Overall+0.1 {
		t.Errorf("3 failures (%.3f) implausibly beats healthy system (%.3f)", points[3].Overall, points[0].Overall)
	}
}

func TestLatencyByExit(t *testing.T) {
	r := runner(t)
	rep, err := r.LatencyByExit(0.8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocalCount+rep.CloudCount != rep.Samples {
		t.Errorf("exit counts %d+%d != %d samples", rep.LocalCount, rep.CloudCount, rep.Samples)
	}
	// Cloud-exited samples pay the WAN link; when both kinds occur, local
	// must be faster on average.
	if rep.LocalCount > 0 && rep.CloudCount > 0 && rep.LocalMean >= rep.CloudMean {
		t.Errorf("local mean %v not below cloud mean %v", rep.LocalMean, rep.CloudMean)
	}
	if !strings.Contains(FormatLatencyReport(rep), "local exits") {
		t.Error("FormatLatencyReport missing local line")
	}
}

func TestServingThroughputSweep(t *testing.T) {
	r := runner(t)
	rep, err := r.ServingThroughput(0.8, 10, []int{1, 2}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exits) != 2 {
		t.Fatalf("two-tier sweep has %d exits, want 2", len(rep.Exits))
	}
	if len(rep.Points) != 4 {
		t.Fatalf("got %d points, want 4 (2 levels × 2 batch sizes)", len(rep.Points))
	}
	if rep.Points[0].Batch != 1 || rep.Points[len(rep.Points)-1].Batch != 8 {
		t.Errorf("batch sweep order wrong: first %d, last %d", rep.Points[0].Batch, rep.Points[len(rep.Points)-1].Batch)
	}
	if rep.WireUpBytes <= 0 || rep.WireDownBytes <= 0 {
		t.Errorf("wire traffic not measured: up %.1f down %.1f", rep.WireUpBytes, rep.WireDownBytes)
	}
	if rep.Points[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v, want 1", rep.Points[0].Speedup)
	}
	for _, p := range rep.Points {
		total := 0
		for _, c := range p.ExitCounts {
			total += c
		}
		if total != p.Samples {
			t.Errorf("exit counts sum to %d, want %d", total, p.Samples)
		}
	}
	if rep.SummaryBytes <= 0 {
		t.Error("no summary bytes measured on the device hop")
	}
}

func TestEdgeServingThroughputReportsThreeExits(t *testing.T) {
	r := runner(t)
	rep, err := r.EdgeServingThroughput(0.8, 0.8, 20, []int{1, 4}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exits) != 3 {
		t.Fatalf("edge sweep has %d exits, want 3", len(rep.Exits))
	}
	for _, p := range rep.Points {
		total := 0
		for _, c := range p.ExitCounts {
			total += c
		}
		if total != p.Samples {
			t.Errorf("exit counts sum to %d, want %d", total, p.Samples)
		}
	}
	out := FormatServingReport(rep)
	for _, want := range []string{"%local", "%edge", "%cloud", "hop 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatServingReport missing %q:\n%s", want, out)
		}
	}
}

func TestEdgeLatencyByExitCoversThreeExits(t *testing.T) {
	r := runner(t)
	rep, err := r.EdgeLatencyByExit(0.8, 0.8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exits != 3 {
		t.Fatalf("Exits = %d, want 3", rep.Exits)
	}
	if rep.LocalCount+rep.EdgeCount+rep.CloudCount != rep.Samples {
		t.Errorf("exit counts %d+%d+%d != %d samples",
			rep.LocalCount, rep.EdgeCount, rep.CloudCount, rep.Samples)
	}
	if !strings.Contains(FormatLatencyReport(rep), "edge exits") {
		t.Error("FormatLatencyReport missing edge line")
	}
}

func TestMixedPrecisionAblation(t *testing.T) {
	r := runner(t)
	rows, err := r.MixedPrecisionAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].DeviceMemBytes != rows[1].DeviceMemBytes {
		t.Error("device memory must be identical across variants (devices stay binary)")
	}
	if rows[1].CloudMemBytes <= rows[0].CloudMemBytes {
		t.Error("float cloud must cost more memory than binary cloud")
	}
	if !strings.Contains(FormatAblation(rows), "mixed precision") {
		t.Error("FormatAblation missing variant name")
	}
}

func TestEdgeHierarchy(t *testing.T) {
	r := runner(t)
	row, err := r.EdgeHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if len(row.ExitFractions) != 3 {
		t.Fatalf("got %d exit fractions, want 3", len(row.ExitFractions))
	}
	var sum float64
	for _, f := range row.ExitFractions {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("exit fractions sum to %g", sum)
	}
	if !strings.Contains(FormatEdgeHierarchy(row), "edge exit") {
		t.Error("FormatEdgeHierarchy missing edge line")
	}
}

func TestCommunicationReductionMeasuredMatchesAnalytic(t *testing.T) {
	r := runner(t)
	rep, err := r.CommunicationReduction(0.8, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RawOffloadBytes != 3072 {
		t.Errorf("raw baseline %d, want 3072", rep.RawOffloadBytes)
	}
	// The measured payload must match Eq. (1) exactly: the protocol
	// carries precisely the bytes the model charges.
	diff := rep.MeasuredPayloadBytes - rep.AnalyticBytes
	if diff < -0.01 || diff > 0.01 {
		t.Errorf("measured payload %.2f B vs analytic %.2f B", rep.MeasuredPayloadBytes, rep.AnalyticBytes)
	}
	if rep.MeasuredWireBytes <= rep.MeasuredPayloadBytes {
		t.Error("wire bytes must exceed payload (framing)")
	}
	if rep.Reduction <= 1 {
		t.Errorf("reduction %.2fx, want > 1x", rep.Reduction)
	}
	out := FormatCommReport(rep)
	if !strings.Contains(out, "reduction") {
		t.Error("FormatCommReport missing reduction line")
	}
}

func TestReplicaScalingAndFailover(t *testing.T) {
	r := runner(t)
	rep, err := r.ReplicaScaling([]int{1, 2}, 64, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	if rep.Points[0].Replicas != 1 || rep.Points[0].Speedup != 1 {
		t.Errorf("baseline point = %+v, want 1 replica at speedup 1", rep.Points[0])
	}
	if rep.Points[1].Throughput <= 0 {
		t.Errorf("2-replica throughput = %v, want > 0", rep.Points[1].Throughput)
	}
	fo := rep.Failover
	if fo.Errors != 0 {
		t.Errorf("failover run had %d errors, want 0 (every sample must be classified)", fo.Errors)
	}
	if fo.Mismatches != 0 {
		t.Errorf("failover run had %d mismatches vs the staged reference, want 0 (bit-identical)", fo.Mismatches)
	}
	out := FormatReplicaReport(rep)
	if !strings.Contains(out, "failover: PASS") {
		t.Errorf("report missing failover verdict:\n%s", out)
	}
}
