package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// CommReport is the §IV-H communication comparison (E8): the analytic
// Eq. (1) cost of DDNN inference versus offloading raw sensor input, plus
// the bytes actually measured on a running cluster.
type CommReport struct {
	// Threshold is the local-exit threshold used.
	Threshold float64
	// LocalExitPct is the measured fraction of samples exiting locally.
	LocalExitPct float64
	// RawOffloadBytes is the per-sample baseline: raw image to the cloud.
	RawOffloadBytes int
	// AnalyticBytes is the Eq. (1) expected per-device, per-sample cost.
	AnalyticBytes float64
	// MeasuredPayloadBytes is the per-device, per-sample payload measured
	// on the cluster (summaries + feature uploads).
	MeasuredPayloadBytes float64
	// MeasuredWireBytes includes protocol framing.
	MeasuredWireBytes float64
	// Reduction is RawOffloadBytes / AnalyticBytes.
	Reduction float64
	// Samples is how many test samples ran through the cluster.
	Samples int
	// MeanLatencyLocal and MeanLatencyCloud are mean session latencies by
	// exit point.
	MeanLatencyLocal time.Duration
	MeanLatencyCloud time.Duration
}

// CommunicationReduction runs the trained MP-CC DDNN over the test split
// on an in-process cluster (real protocol, in-memory links), measuring
// actual bytes, then compares them with the Eq. (1) analytic model and the
// raw-offload baseline (E8). The paper reports >20× reduction for its
// largest model at 140 B vs 3072 B.
func (r *Runner) CommunicationReduction(threshold float64, maxSamples int) (*CommReport, error) {
	m, err := r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	if err != nil {
		return nil, err
	}
	if threshold < 0 {
		// Pick the best threshold on the test sweep, as §IV-D does.
		res := m.Evaluate(r.test, nil, r.opts.BatchSize)
		best, err := branchy.SearchThreshold(res.Outcomes(), branchy.Grid(10))
		if err != nil {
			return nil, err
		}
		threshold = best.Threshold
	}

	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Threshold = threshold
	quiet := slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))
	sim, err := cluster.NewSim(m, r.test, gcfg, transport.NewMem(), quiet)
	if err != nil {
		return nil, fmt.Errorf("experiments: start cluster: %w", err)
	}
	defer sim.Close()

	n := r.test.Len()
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	localExits := 0
	var localLat, cloudLat time.Duration
	var localN, cloudN int
	for id := 0; id < n; id++ {
		res, err := sim.Gateway.Classify(context.Background(), uint64(id))
		if err != nil {
			return nil, fmt.Errorf("experiments: classify sample %d: %w", id, err)
		}
		switch res.Exit {
		case wire.ExitLocal:
			localExits++
			localLat += res.Latency
			localN++
		case wire.ExitCloud:
			cloudLat += res.Latency
			cloudN++
		}
	}

	devices := float64(m.Cfg.Devices)
	payload := float64(sim.Gateway.Meter.Total()) / (devices * float64(n))
	wireBytes := float64(sim.Gateway.WireBytesUp()) / (devices * float64(n))
	l := float64(localExits) / float64(n)
	report := &CommReport{
		Threshold:            threshold,
		LocalExitPct:         l * 100,
		RawOffloadBytes:      m.Cfg.RawOffloadBytes(),
		AnalyticBytes:        m.Cfg.CommCostBytes(l),
		MeasuredPayloadBytes: payload,
		MeasuredWireBytes:    wireBytes,
		Samples:              n,
	}
	report.Reduction = float64(report.RawOffloadBytes) / report.AnalyticBytes
	if localN > 0 {
		report.MeanLatencyLocal = localLat / time.Duration(localN)
	}
	if cloudN > 0 {
		report.MeanLatencyCloud = cloudLat / time.Duration(cloudN)
	}
	return report, nil
}

// FormatCommReport renders the §IV-H comparison.
func FormatCommReport(rep *CommReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "threshold T:                 %.2f\n", rep.Threshold)
	fmt.Fprintf(&sb, "local exit:                  %.1f%% of %d samples\n", rep.LocalExitPct, rep.Samples)
	fmt.Fprintf(&sb, "raw offload baseline:        %d B/sample\n", rep.RawOffloadBytes)
	fmt.Fprintf(&sb, "DDNN analytic (Eq. 1):       %.1f B/sample/device\n", rep.AnalyticBytes)
	fmt.Fprintf(&sb, "DDNN measured payload:       %.1f B/sample/device\n", rep.MeasuredPayloadBytes)
	fmt.Fprintf(&sb, "DDNN measured wire (framed): %.1f B/sample/device\n", rep.MeasuredWireBytes)
	fmt.Fprintf(&sb, "reduction vs raw offload:    %.1fx\n", rep.Reduction)
	fmt.Fprintf(&sb, "mean latency local exit:     %v\n", rep.MeanLatencyLocal)
	fmt.Fprintf(&sb, "mean latency cloud exit:     %v\n", rep.MeanLatencyCloud)
	return sb.String()
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
