package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/transport"
)

// ServingPoint is one row of the serving-throughput comparison: sustained
// classification throughput at a given number of concurrent sessions.
type ServingPoint struct {
	// Concurrency is the number of in-flight sessions.
	Concurrency int
	// Samples classified during the measurement.
	Samples int
	// Elapsed wall-clock time.
	Elapsed time.Duration
	// Throughput in samples per second.
	Throughput float64
	// Speedup relative to the single-flight baseline (first row).
	Speedup float64
}

// ServingThroughput measures multi-session serving throughput on a live
// in-process cluster at each concurrency level, quantifying what the
// Engine's session multiplexing buys over the old single-flight gateway.
// Connections carry the §IV-B link profiles (wireless device uplinks, WAN
// cloud path), so concurrent sessions overlap link latency exactly as a
// deployed gateway would. The first level should be 1 (the lock-step
// baseline); speedups are reported relative to it.
func (r *Runner) ServingThroughput(threshold float64, samples int, levels []int) ([]ServingPoint, error) {
	m, err := r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	if err != nil {
		return nil, err
	}
	if samples <= 0 || samples > r.test.Len() {
		samples = r.test.Len()
	}
	quiet := slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))

	var points []ServingPoint
	for _, level := range levels {
		gcfg := cluster.DefaultGatewayConfig()
		gcfg.Threshold = threshold
		eng, err := cluster.NewEngine(m, r.test, cluster.EngineConfig{
			Gateway:        gcfg,
			MaxConcurrency: level,
			Logger:         quiet,
			DeviceLink:     transport.DeviceToGateway,
			CloudLink:      transport.GatewayToCloud,
		}, transport.NewMem())
		if err != nil {
			return nil, fmt.Errorf("experiments: start engine: %w", err)
		}
		ids := make([]uint64, samples)
		for i := range ids {
			ids[i] = uint64(i)
		}
		start := time.Now()
		if _, err := eng.ClassifyBatch(context.Background(), ids); err != nil {
			eng.Close()
			return nil, fmt.Errorf("experiments: serving at concurrency %d: %w", level, err)
		}
		elapsed := time.Since(start)
		eng.Close()

		p := ServingPoint{
			Concurrency: level,
			Samples:     samples,
			Elapsed:     elapsed,
			Throughput:  float64(samples) / elapsed.Seconds(),
		}
		if len(points) == 0 {
			p.Speedup = 1
		} else {
			p.Speedup = p.Throughput / points[0].Throughput
		}
		points = append(points, p)
	}
	return points, nil
}

// FormatServingThroughput renders the concurrency sweep.
func FormatServingThroughput(points []ServingPoint) string {
	var sb strings.Builder
	sb.WriteString("Concurrency  Samples    Elapsed  Samples/s  Speedup\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%11d %8d %10v %10.1f %7.2fx\n",
			p.Concurrency, p.Samples, p.Elapsed.Round(time.Millisecond), p.Throughput, p.Speedup)
	}
	return sb.String()
}
