package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// ServingPoint is one row of the serving-throughput comparison: sustained
// classification throughput at a given number of concurrent sessions,
// plus where the samples exited.
type ServingPoint struct {
	// Concurrency is the number of in-flight sessions.
	Concurrency int
	// Batch is the micro-batch size; 1 means per-sample sessions.
	Batch int
	// Samples classified during the measurement.
	Samples int
	// Elapsed wall-clock time.
	Elapsed time.Duration
	// Throughput in samples per second.
	Throughput float64
	// Speedup relative to the single-flight baseline (first row).
	Speedup float64
	// ExitCounts is the number of samples classified at each pipeline
	// stage, in Exits order.
	ExitCounts []int
}

// ServingReport is a full serving sweep over one hierarchy: the
// concurrency points plus the per-sample communication measured on each
// hop of the escalation path.
type ServingReport struct {
	// Exits lists the pipeline's exit points, lowest tier first.
	Exits []wire.ExitPoint
	// Thresholds are the entropy thresholds per exit (final exit 1).
	Thresholds []float64
	// Points is the concurrency sweep.
	Points []ServingPoint
	// SummaryBytes is the measured per-device, per-sample class-summary
	// payload on the device→gateway hop (Eq. 1 first term).
	SummaryBytes float64
	// FeatureBytes is the measured per-device, per-sample feature-upload
	// payload relayed up the first hop for escalated samples (Eq. 1
	// second term).
	FeatureBytes float64
	// EdgeHopBytes is the measured per-sample payload on the edge→cloud
	// hop — the bit-packed edge feature maps of samples that missed both
	// lower exits. Zero for two-tier hierarchies.
	EdgeHopBytes float64
	// WireUpBytes and WireDownBytes are the measured per-sample wire
	// traffic on the device links including protocol framing: up is the
	// device→gateway direction (summaries, feature uploads), down the
	// gateway→device direction (capture and feature requests). Both are
	// taken from the last sweep point, whose batch size amortizes
	// framing the most.
	WireUpBytes   float64
	WireDownBytes float64
}

// ServingThroughput measures multi-session serving throughput of the
// two-tier MP-CC DDNN on a live in-process cluster at each (concurrency,
// micro-batch) point, quantifying what the Engine's session multiplexing
// and cross-session batching buy over the old single-flight gateway.
// Connections carry the §IV-B link profiles (wireless device uplinks,
// WAN cloud path), so concurrent sessions overlap link latency exactly
// as a deployed gateway would. The first level should be 1 (the
// lock-step baseline); speedups are reported relative to it. batches
// lists micro-batch sizes to sweep per level (nil means per-sample
// only); batch sizes above 1 coalesce whole chunks into one session per
// tier.
func (r *Runner) ServingThroughput(threshold float64, samples int, levels, batches []int) (*ServingReport, error) {
	m, err := r.model(agg.MP, agg.CC, r.opts.Model.DeviceFilters)
	if err != nil {
		return nil, err
	}
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Threshold = threshold
	return r.servingSweep(m, gcfg, samples, levels, batches)
}

// EdgeServingThroughput is ServingThroughput over the three-tier
// device→edge→cloud hierarchy (Fig. 2 config e): the gateway↔edge hop
// carries the nearby-edge profile and the edge↔cloud hop the WAN
// profile, so the sweep reports per-exit fractions for all three exits
// and the communication cost of both hops.
func (r *Runner) EdgeServingThroughput(localT, edgeT float64, samples int, levels, batches []int) (*ServingReport, error) {
	m, err := r.edgeModel()
	if err != nil {
		return nil, err
	}
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Threshold = localT
	gcfg.EdgeThreshold = edgeT
	return r.servingSweep(m, gcfg, samples, levels, batches)
}

// servingSweep runs the (batch × concurrency) sweep on an in-process
// cluster with the §IV-B link profiles for every hop the model's
// hierarchy has.
func (r *Runner) servingSweep(m *core.Model, gcfg cluster.GatewayConfig, samples int, levels, batches []int) (*ServingReport, error) {
	if samples <= 0 || samples > r.test.Len() {
		samples = r.test.Len()
	}
	if len(batches) == 0 {
		batches = []int{1}
	}
	quiet := slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))

	pipeline := cluster.BuildPipeline(m.Cfg, gcfg.Threshold, gcfg.EdgeThreshold)
	rep := &ServingReport{Exits: pipeline.Exits()}
	for _, s := range pipeline {
		rep.Thresholds = append(rep.Thresholds, s.Threshold)
	}
	exitIndex := make(map[wire.ExitPoint]int, len(rep.Exits))
	for i, e := range rep.Exits {
		exitIndex[e] = i
	}

	for _, batch := range batches {
		for _, level := range levels {
			eng, err := cluster.NewEngine(m, r.test, cluster.EngineConfig{
				Gateway:        gcfg,
				MaxConcurrency: level,
				Batch:          cluster.BatchConfig{MaxBatch: batch},
				Logger:         quiet,
				DeviceLink:     transport.DeviceToGateway,
				EdgeLink:       transport.GatewayToEdge,
				CloudLink:      transport.GatewayToCloud,
			}, transport.NewMem())
			if err != nil {
				return nil, fmt.Errorf("experiments: start engine: %w", err)
			}
			ids := make([]uint64, samples)
			for i := range ids {
				ids[i] = uint64(i)
			}
			start := time.Now()
			results, err := eng.ClassifyBatch(context.Background(), ids)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("experiments: serving at concurrency %d batch %d: %w", level, batch, err)
			}
			elapsed := time.Since(start)

			p := ServingPoint{
				Concurrency: level,
				Batch:       batch,
				Samples:     samples,
				Elapsed:     elapsed,
				Throughput:  float64(samples) / elapsed.Seconds(),
				ExitCounts:  make([]int, len(rep.Exits)),
			}
			for _, res := range results {
				if i, ok := exitIndex[res.Exit]; ok {
					p.ExitCounts[i]++
				}
			}
			if len(rep.Points) == 0 {
				p.Speedup = 1
			} else {
				p.Speedup = p.Throughput / rep.Points[0].Throughput
			}
			rep.Points = append(rep.Points, p)

			// Per-hop communication, measured on the last point's run
			// (the exit decisions, and hence the Eq. (1) payloads, are
			// identical at every level and batch size — the parity
			// contract — while wire framing shrinks as batches grow).
			devices := float64(m.Cfg.Devices)
			n := float64(samples)
			gw := eng.Gateway()
			rep.SummaryBytes = float64(gw.Meter.Get("local-summary")) / (devices * n)
			feat := gw.Meter.Get("edge-upload") + gw.Meter.Get("cloud-upload")
			rep.FeatureBytes = float64(feat) / (devices * n)
			if edge := eng.Edge(); edge != nil {
				rep.EdgeHopBytes = float64(edge.Meter.Get("cloud-upload")) / n
			}
			rep.WireUpBytes = float64(gw.WireBytesUp()) / n
			rep.WireDownBytes = float64(gw.WireBytesDown()) / n
			eng.Close()
		}
	}
	return rep, nil
}

// FormatServingReport renders the (batch × concurrency) sweep with
// per-exit fractions and the per-hop communication summary.
func FormatServingReport(rep *ServingReport) string {
	var sb strings.Builder
	sb.WriteString("Concurrency  Batch  Samples    Elapsed  Samples/s  Speedup")
	for _, e := range rep.Exits {
		fmt.Fprintf(&sb, "  %%%s", e)
	}
	sb.WriteString("\n")
	for _, p := range rep.Points {
		fmt.Fprintf(&sb, "%11d %6d %8d %10v %10.1f %7.2fx",
			p.Concurrency, p.Batch, p.Samples, p.Elapsed.Round(time.Millisecond), p.Throughput, p.Speedup)
		for _, c := range p.ExitCounts {
			fmt.Fprintf(&sb, " %6.1f", 100*float64(c)/float64(p.Samples))
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "hop 1 (device uplink): %.1f B/sample/device summaries + %.1f B/sample/device features\n",
		rep.SummaryBytes, rep.FeatureBytes)
	if len(rep.Exits) > 2 {
		fmt.Fprintf(&sb, "hop 2 (edge→cloud):    %.1f B/sample escalated edge features\n", rep.EdgeHopBytes)
	}
	fmt.Fprintf(&sb, "device wire traffic:   %.1f B/sample up, %.1f B/sample down (incl. framing, last point)\n",
		rep.WireUpBytes, rep.WireDownBytes)
	return sb.String()
}
