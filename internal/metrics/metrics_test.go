package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestConfusionAccuracy(t *testing.T) {
	c := NewConfusion(3)
	c.Add(0, 0)
	c.Add(0, 0)
	c.Add(1, 1)
	c.Add(2, 0) // one mistake
	if got := c.Total(); got != 4 {
		t.Errorf("Total = %d, want 4", got)
	}
	if got := c.Accuracy(); got != 0.75 {
		t.Errorf("Accuracy = %g, want 0.75", got)
	}
	if got := c.At(2, 0); got != 1 {
		t.Errorf("At(2,0) = %d, want 1", got)
	}
}

func TestConfusionEmptyAccuracyZero(t *testing.T) {
	if got := NewConfusion(2).Accuracy(); got != 0 {
		t.Errorf("empty Accuracy = %g, want 0", got)
	}
}

func TestConfusionPerClassRecall(t *testing.T) {
	c := NewConfusion(3)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(1, 1)
	recall := c.PerClassRecall()
	if recall[0] != 0.5 {
		t.Errorf("class 0 recall = %g, want 0.5", recall[0])
	}
	if recall[1] != 1 {
		t.Errorf("class 1 recall = %g, want 1", recall[1])
	}
	if !math.IsNaN(recall[2]) {
		t.Errorf("class 2 recall = %g, want NaN (no samples)", recall[2])
	}
}

func TestConfusionPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add did not panic")
		}
	}()
	NewConfusion(2).Add(0, 5)
}

func TestConfusionString(t *testing.T) {
	c := NewConfusion(2)
	c.Add(0, 1)
	if s := c.String(); !strings.Contains(s, "1") {
		t.Errorf("String() = %q missing count", s)
	}
}

func TestCommMeter(t *testing.T) {
	m := NewCommMeter()
	m.Add("up", 100)
	m.Add("up", 50)
	m.Add("down", 7)
	if got := m.Get("up"); got != 150 {
		t.Errorf("Get(up) = %d, want 150", got)
	}
	if got := m.Total(); got != 157 {
		t.Errorf("Total = %d, want 157", got)
	}
	cats := m.Categories()
	if len(cats) != 2 || cats[0] != "down" || cats[1] != "up" {
		t.Errorf("Categories = %v, want [down up]", cats)
	}
	m.Reset()
	if m.Total() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestCommMeterConcurrent(t *testing.T) {
	m := NewCommMeter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Add("x", 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Get("x"); got != 800 {
		t.Errorf("concurrent Add lost updates: %d, want 800", got)
	}
}

func TestLatencyRecorder(t *testing.T) {
	l := NewLatencyRecorder()
	if l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Error("empty recorder must report zero")
	}
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		l.Record(d * time.Millisecond)
	}
	if got := l.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := l.Mean(); got != 30*time.Millisecond {
		t.Errorf("Mean = %v, want 30ms", got)
	}
	if got := l.Percentile(100); got != 50*time.Millisecond {
		t.Errorf("p100 = %v, want 50ms", got)
	}
	if got := l.Percentile(50); got != 30*time.Millisecond {
		t.Errorf("p50 = %v, want 30ms", got)
	}
	if got := l.Percentile(0); got != 10*time.Millisecond {
		t.Errorf("p0 = %v, want 10ms", got)
	}
}
