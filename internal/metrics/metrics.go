// Package metrics provides evaluation utilities shared by the experiment
// harness and the cluster runtime: confusion matrices, per-exit counters,
// communication-byte accounting (both the analytic model of Eq. (1) and
// bytes measured on the wire) and latency summaries.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Confusion is a square confusion matrix. Rows are true labels, columns
// predicted labels.
type Confusion struct {
	classes int
	counts  []int
}

// NewConfusion builds a confusion matrix over n classes.
func NewConfusion(n int) *Confusion {
	return &Confusion{classes: n, counts: make([]int, n*n)}
}

// Add records one prediction.
func (c *Confusion) Add(trueLabel, predicted int) {
	if trueLabel < 0 || trueLabel >= c.classes || predicted < 0 || predicted >= c.classes {
		panic(fmt.Sprintf("metrics: label pair (%d,%d) out of range for %d classes", trueLabel, predicted, c.classes))
	}
	c.counts[trueLabel*c.classes+predicted]++
}

// At returns the count of samples with the given true label predicted as
// the given class.
func (c *Confusion) At(trueLabel, predicted int) int {
	return c.counts[trueLabel*c.classes+predicted]
}

// Total returns the number of recorded predictions.
func (c *Confusion) Total() int {
	t := 0
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Accuracy returns the fraction of correct predictions (trace / total).
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.classes; i++ {
		correct += c.At(i, i)
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns recall for each class; classes with no samples
// report NaN.
func (c *Confusion) PerClassRecall() []float64 {
	out := make([]float64, c.classes)
	for i := range out {
		row := 0
		for j := 0; j < c.classes; j++ {
			row += c.At(i, j)
		}
		if row == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(c.At(i, i)) / float64(row)
	}
	return out
}

// String renders the matrix for reports.
func (c *Confusion) String() string {
	var sb strings.Builder
	for i := 0; i < c.classes; i++ {
		for j := 0; j < c.classes; j++ {
			fmt.Fprintf(&sb, "%6d", c.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CommMeter accumulates communication bytes by category. It is safe for
// concurrent use, so cluster nodes can share one meter.
type CommMeter struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewCommMeter builds an empty meter.
func NewCommMeter() *CommMeter {
	return &CommMeter{counts: make(map[string]int64)}
}

// Add records n bytes in a category (e.g. "local-summary", "cloud-upload").
func (m *CommMeter) Add(category string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[category] += n
}

// Get returns the bytes recorded for a category.
func (m *CommMeter) Get(category string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[category]
}

// Total returns the bytes recorded across all categories.
func (m *CommMeter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, v := range m.counts {
		t += v
	}
	return t
}

// Categories returns the category names in sorted order.
func (m *CommMeter) Categories() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.counts))
	for k := range m.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset clears all counters.
func (m *CommMeter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts = make(map[string]int64)
}

// LatencyRecorder collects durations and reports order statistics. It is
// safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewLatencyRecorder builds an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Record adds one duration sample.
func (l *LatencyRecorder) Record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = append(l.samples, d)
}

// Count returns the number of samples recorded.
func (l *LatencyRecorder) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Mean returns the mean latency, or 0 with no samples.
func (l *LatencyRecorder) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile latency (p in [0,100]), or 0 with
// no samples.
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(l.samples))
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
