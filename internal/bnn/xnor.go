package bnn

import (
	"fmt"
	"math/bits"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// This file implements the eBNN-style deployed inference kernel: once a
// layer's weights are binarized and bit-packed, a ±1 dot product reduces to
// XNOR + popcount — for sign vectors x, w of length n,
//
//	Σᵢ xᵢ·wᵢ = n − 2·popcount(xor(bits(x), bits(w))),
//
// which is how the <2 KB device sections execute on real microcontrollers
// without any floating-point multiplies. The float training path
// (BinaryLinear) and this packed path are verified against each other in
// the tests.

// PackedVector is a bit-packed ±1 vector: bit i set means +1.
type PackedVector struct {
	N    int
	Bits []byte
}

// PackVector packs the signs of a float vector.
func PackVector(v []float32) PackedVector {
	t := tensor.FromSlice(append([]float32(nil), v...), len(v))
	return PackedVector{N: len(v), Bits: PackSigns(t)}
}

// XnorDot computes the ±1 dot product of two packed vectors of equal
// length using XNOR and popcount.
func XnorDot(a, b PackedVector) (int, error) {
	if a.N != b.N {
		return 0, fmt.Errorf("bnn: XnorDot length mismatch %d vs %d", a.N, b.N)
	}
	if len(a.Bits) != len(b.Bits) {
		return 0, fmt.Errorf("bnn: XnorDot packed size mismatch %d vs %d", len(a.Bits), len(b.Bits))
	}
	hamming := 0
	n := a.N
	full := n / 8
	for i := 0; i < full; i++ {
		hamming += bits.OnesCount8(a.Bits[i] ^ b.Bits[i])
	}
	if rem := n % 8; rem != 0 {
		mask := byte(1<<uint(rem)) - 1
		hamming += bits.OnesCount8((a.Bits[full] ^ b.Bits[full]) & mask)
	}
	return n - 2*hamming, nil
}

// PackedLinear is the deployed form of a BinaryLinear layer: weights stored
// 1 bit each, column-major per output, evaluated with XNOR-popcount.
type PackedLinear struct {
	In, Out int
	// cols[j] holds output j's packed weight column.
	cols []PackedVector
}

// Deploy converts a trained BinaryLinear into its packed deployment form.
func Deploy(l *BinaryLinear) *PackedLinear {
	in, out := l.In(), l.Out()
	p := &PackedLinear{In: in, Out: out, cols: make([]PackedVector, out)}
	w := l.Latent.Value // [in, out]
	col := make([]float32, in)
	for j := 0; j < out; j++ {
		for i := 0; i < in; i++ {
			col[i] = w.At(i, j)
		}
		p.cols[j] = PackVector(col)
	}
	return p
}

// MemoryBytes returns the deployed weight footprint.
func (p *PackedLinear) MemoryBytes() int {
	total := 0
	for _, c := range p.cols {
		total += len(c.Bits)
	}
	return total
}

// Forward evaluates the layer on a packed ±1 input vector, producing the
// integer pre-activations (one per output). They equal the float path's
// x·sign(W) exactly when x is itself a sign vector.
func (p *PackedLinear) Forward(x PackedVector) ([]int, error) {
	if x.N != p.In {
		return nil, fmt.Errorf("bnn: PackedLinear input length %d, want %d", x.N, p.In)
	}
	out := make([]int, p.Out)
	for j, col := range p.cols {
		d, err := XnorDot(x, col)
		if err != nil {
			return nil, err
		}
		out[j] = d
	}
	return out, nil
}
