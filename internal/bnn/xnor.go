package bnn

import (
	"fmt"
	"math/bits"
)

// This file implements the eBNN-style deployed inference kernel: once a
// layer's weights are binarized and bit-packed, a ±1 dot product reduces to
// XNOR + popcount — for sign vectors x, w of length n,
//
//	Σᵢ xᵢ·wᵢ = n − 2·popcount(xor(bits(x), bits(w))),
//
// which is how the <2 KB device sections execute on real microcontrollers
// without any floating-point multiplies. The vectors are stored in 64-bit
// words so one XNOR+popcount covers 64 weights; the byte-level PackSigns
// wire format is unchanged (word w holds bytes 8w..8w+7, little-endian),
// so Bytes/PackedVectorFromBytes round-trip without bit shuffling. The
// float training path (BinaryLinear) and this packed path are verified
// against each other in the tests, as are the word-wide kernels against
// the byte-wide reference (XnorDotBytes).

// PackedVector is a bit-packed ±1 vector in 64-bit lanes: bit i (counting
// little-endian within and across words) is set when element i is +1.
// Bits past N in the last word are zero.
type PackedVector struct {
	N     int
	Words []uint64
}

// packedWords returns the number of 64-bit words holding n elements.
func packedWords(n int) int { return (n + 63) / 64 }

// PackVector packs the signs of a float vector (non-negative = +1)
// with the fused binarize+pack kernel of the active dispatch path.
func PackVector(v []float32) PackedVector {
	p := PackedVector{N: len(v), Words: make([]uint64, packedWords(len(v)))}
	packWords(p.Words, v)
	return p
}

// PackedVectorFromBytes reassembles a packed vector from its PackSigns
// byte form (the wire representation). Bits past n in the last byte are
// masked off.
func PackedVectorFromBytes(n int, data []byte) (PackedVector, error) {
	if need := PackedSize(n); len(data) != need {
		return PackedVector{}, fmt.Errorf("bnn: packed data is %d bytes, %d elements need %d", len(data), n, need)
	}
	p := PackedVector{N: n, Words: make([]uint64, packedWords(n))}
	for i, b := range data {
		p.Words[i/8] |= uint64(b) << uint(8*(i%8))
	}
	if rem := n % 64; rem != 0 && len(p.Words) > 0 {
		p.Words[len(p.Words)-1] &= 1<<uint(rem) - 1
	}
	return p, nil
}

// Bytes returns the vector in PackSigns byte form ((N+7)/8 bytes,
// little-endian within each byte), the representation the wire codec and
// the Eq. (1) cost model use.
func (p PackedVector) Bytes() []byte {
	out := make([]byte, PackedSize(p.N))
	for i := range out {
		out[i] = byte(p.Words[i/8] >> uint(8*(i%8)))
	}
	return out
}

// XnorDot computes the ±1 dot product of two packed vectors of equal
// length with XNOR and popcount over the 64-bit words, dispatched on
// the active kernel path: byte-wide popcounts (naive oracle), one
// 64-bit popcount per word (go), or the AVX2 nibble-lookup popcount
// (simd). All paths are exact integer arithmetic and return identical
// results.
func XnorDot(a, b PackedVector) (int, error) {
	if a.N != b.N {
		return 0, fmt.Errorf("bnn: XnorDot length mismatch %d vs %d", a.N, b.N)
	}
	if len(a.Words) != len(b.Words) {
		return 0, fmt.Errorf("bnn: XnorDot packed size mismatch %d vs %d", len(a.Words), len(b.Words))
	}
	full := a.N / 64
	hamming := xnorHamming(a.Words[:full], b.Words[:full])
	if rem := a.N % 64; rem != 0 {
		mask := uint64(1)<<uint(rem) - 1
		hamming += bits.OnesCount64((a.Words[full] ^ b.Words[full]) & mask)
	}
	return a.N - 2*hamming, nil
}

// XnorDotBytes is the byte-wide reference kernel (the original
// implementation, one OnesCount8 per byte) over PackSigns byte forms. It
// is kept as ground truth for the word-wide kernel's parity tests and
// the naive-vs-optimized benchmarks.
func XnorDotBytes(n int, a, b []byte) (int, error) {
	if need := PackedSize(n); len(a) != need || len(b) != need {
		return 0, fmt.Errorf("bnn: XnorDotBytes packed size %d vs %d, want %d", len(a), len(b), need)
	}
	hamming := 0
	full := n / 8
	for i := 0; i < full; i++ {
		hamming += bits.OnesCount8(a[i] ^ b[i])
	}
	if rem := n % 8; rem != 0 {
		mask := byte(1<<uint(rem)) - 1
		hamming += bits.OnesCount8((a[full] ^ b[full]) & mask)
	}
	return n - 2*hamming, nil
}

// PackedLinear is the deployed form of a BinaryLinear layer: weights
// stored 1 bit each, evaluated with XNOR-popcount. The packed columns are
// interleaved by word index — w[wi·Out+j] is word wi of output j's column
// — so Forward streams the weights sequentially while evaluating every
// output column in one pass over the input.
type PackedLinear struct {
	In, Out int
	words   int // 64-bit words per column
	w       []uint64
}

// Deploy converts a trained BinaryLinear into its packed deployment form.
func Deploy(l *BinaryLinear) *PackedLinear {
	in, out := l.In(), l.Out()
	p := &PackedLinear{In: in, Out: out, words: packedWords(in)}
	p.w = make([]uint64, p.words*out)
	w := l.Latent.Value // [in, out]
	col := make([]float32, in)
	for j := 0; j < out; j++ {
		for i := 0; i < in; i++ {
			col[i] = w.At(i, j)
		}
		pv := PackVector(col)
		for wi, word := range pv.Words {
			p.w[wi*out+j] = word
		}
	}
	return p
}

// MemoryBytes returns the deployed weight footprint in the byte-packed
// eBNN representation ((In+7)/8 bytes per output column).
func (p *PackedLinear) MemoryBytes() int {
	return p.Out * PackedSize(p.In)
}

// Forward evaluates the layer on a packed ±1 input vector, producing the
// integer pre-activations (one per output). They equal the float path's
// x·sign(W) exactly when x is itself a sign vector.
func (p *PackedLinear) Forward(x PackedVector) ([]int, error) {
	out := make([]int, p.Out)
	if err := p.ForwardInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardInto evaluates the layer into a caller-provided slice, avoiding
// the per-call allocation of Forward. Validation happens once up front;
// the fused kernel then visits every output column per input word, so the
// input is read exactly once regardless of layer width.
func (p *PackedLinear) ForwardInto(dst []int, x PackedVector) error {
	if x.N != p.In {
		return fmt.Errorf("bnn: PackedLinear input length %d, want %d", x.N, p.In)
	}
	if len(x.Words) != p.words {
		return fmt.Errorf("bnn: PackedLinear input has %d words, want %d", len(x.Words), p.words)
	}
	if len(dst) != p.Out {
		return fmt.Errorf("bnn: PackedLinear output length %d, want %d", len(dst), p.Out)
	}
	for j := range dst {
		dst[j] = 0
	}
	tailMask := ^uint64(0)
	if rem := p.In % 64; rem != 0 {
		tailMask = 1<<uint(rem) - 1
	}
	for wi := 0; wi < p.words; wi++ {
		xw := x.Words[wi]
		if wi == p.words-1 {
			// The deployed columns have zero tail bits, so masking the
			// input's tail once makes the xor of the tails zero.
			xw &= tailMask
		}
		row := p.w[wi*p.Out : (wi+1)*p.Out]
		for j, cw := range row {
			dst[j] += bits.OnesCount64(xw ^ cw)
		}
	}
	for j := range dst {
		dst[j] = p.In - 2*dst[j]
	}
	return nil
}
