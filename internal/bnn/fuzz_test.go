package bnn

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// cycleBytes sizes the fuzzer's byte pool to exactly need bytes,
// cycling it when short and falling back to a deterministic pattern
// when empty.
func cycleBytes(src []byte, need int) []byte {
	out := make([]byte, need)
	if len(src) == 0 {
		for i := range out {
			out[i] = byte(i*131 + 17)
		}
		return out
	}
	for i := range out {
		out[i] = src[i%len(src)]
	}
	return out
}

// FuzzXnorDotParity drives the whole packed pipeline — float binarize
// + pack, then XNOR-popcount dot — on every dispatch path against the
// byte-wide oracles, with fuzzer-chosen lengths and bit patterns. All
// kernels are exact bit arithmetic, so every comparison is exact.
func FuzzXnorDotParity(f *testing.F) {
	f.Add(uint16(64), []byte{0xAA, 0x55, 0xFF, 0x00}, []byte{0x0F, 0xF0})
	f.Add(uint16(0), []byte{}, []byte{})
	f.Add(uint16(317), []byte("xnor-parity-seed"), []byte{0x01})
	f.Fuzz(func(t *testing.T, nr uint16, ar, br []byte) {
		n := int(nr) % 2048
		need := PackedSize(n)
		ab := cycleBytes(ar, need)
		bb := cycleBytes(br, need)
		a, err := PackedVectorFromBytes(n, ab)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PackedVectorFromBytes(n, bb)
		if err != nil {
			t.Fatal(err)
		}
		want, err := XnorDotBytes(n, a.Bytes(), b.Bytes())
		if err != nil {
			t.Fatal(err)
		}

		// Floats for the pack kernels: raw bit patterns from the pool,
		// reaching -0.0, NaN and ±Inf.
		v := make([]float32, n)
		pool := cycleBytes(ar, 4*n+4)
		for i := range v {
			v[i] = math.Float32frombits(binary.LittleEndian.Uint32(pool[4*i:]))
		}
		wantPack := packRef(v)

		prev := tensor.CurrentKernelPath()
		defer tensor.SetKernelPath(prev)
		for _, p := range tensor.KernelPaths() {
			if err := tensor.SetKernelPath(p); err != nil {
				t.Fatal(err)
			}
			got, err := XnorDot(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("path=%v n=%d: XnorDot = %d, byte oracle %d", p, n, got, want)
			}
			if gotPack := PackVector(v).Bytes(); !bytes.Equal(gotPack, wantPack) {
				t.Fatalf("path=%v n=%d: PackVector = %x, reference %x", p, n, gotPack, wantPack)
			}
		}
	})
}
