package bnn

import (
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// ConvP is the fused binary convolution-pool block of Fig. 3: a 3×3
// binarized convolution (stride 1, padding 1, f filters), a 3×3 max pool
// (stride 2, padding 1), batch normalization and a binary activation. On a
// 2^k input it halves each spatial dimension and emits values in {−1, +1}.
type ConvP struct {
	Conv *BinaryConv2D
	Pool *nn.MaxPool2D
	BN   *nn.BatchNorm
	Act  *BinaryActivation
}

var _ nn.Layer = (*ConvP)(nil)

// NewConvP constructs a ConvP block with f output filters.
func NewConvP(rng *rand.Rand, name string, inC, f int) *ConvP {
	return &ConvP{
		Conv: NewBinaryConv2D(rng, name+".conv", inC, f, 3, 1, 1),
		Pool: nn.NewMaxPool2D(3, 2, 1),
		BN:   nn.NewBatchNorm(name+".bn", f),
		Act:  NewBinaryActivation(),
	}
}

// Forward applies conv → pool → batch norm → binary activation.
func (b *ConvP) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := b.Conv.Forward(x, train)
	y = b.Pool.Forward(y, train)
	y = b.BN.Forward(y, train)
	return b.Act.Forward(y, train)
}

// ForwardPooled is the inference forward against a tensor pool:
// intermediates are returned to the pool as soon as the next stage has
// consumed them, and the caller owns the returned tensor.
func (b *ConvP) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	y1 := b.Conv.ForwardPooled(x, p)
	y2 := b.Pool.ForwardPooled(y1, p)
	p.Put(y1)
	y3 := b.BN.ForwardPooled(y2, p)
	p.Put(y2)
	y4 := b.Act.ForwardPooled(y3, p)
	p.Put(y3)
	return y4
}

// Backward propagates through the block in reverse.
func (b *ConvP) Backward(grad *tensor.Tensor) *tensor.Tensor {
	grad = b.Act.Backward(grad)
	grad = b.BN.Backward(grad)
	grad = b.Pool.Backward(grad)
	return b.Conv.Backward(grad)
}

// Params returns the block's learnable parameters.
func (b *ConvP) Params() []*nn.Param {
	ps := b.Conv.Params()
	ps = append(ps, b.BN.Params()...)
	return ps
}

// Filters returns the number of output filters f.
func (b *ConvP) Filters() int { return b.Conv.OutChannels() }

// SyncWeights re-derives the block's binarized weights from the latent
// parameters, making subsequent inference forwards read-only.
func (b *ConvP) SyncWeights() { b.Conv.SyncWeights() }

// MemoryBits returns the eBNN deployment footprint: 1 bit per binarized
// weight plus 32 bits per batch-norm scale/shift pair (γ, β fused with the
// running statistics into a single multiply-add per channel at inference).
func (b *ConvP) MemoryBits() int {
	return b.Conv.WeightBits() + 2*32*b.BN.C
}

// FC is the fused binary fully connected block of Fig. 3: a binarized
// linear layer with n nodes, batch normalization and a binary activation.
type FC struct {
	Linear *BinaryLinear
	BN     *nn.BatchNorm
	Act    *BinaryActivation
}

var _ nn.Layer = (*FC)(nil)

// NewFC constructs an FC block mapping in features to n nodes.
func NewFC(rng *rand.Rand, name string, in, n int) *FC {
	return &FC{
		Linear: NewBinaryLinear(rng, name+".fc", in, n),
		BN:     nn.NewBatchNorm(name+".bn", n),
		Act:    NewBinaryActivation(),
	}
}

// Forward applies linear → batch norm → binary activation.
func (b *FC) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := b.Linear.Forward(x, train)
	y = b.BN.Forward(y, train)
	return b.Act.Forward(y, train)
}

// ForwardPooled is the inference forward against a tensor pool:
// intermediates are returned to the pool as soon as the next stage has
// consumed them, and the caller owns the returned tensor.
func (b *FC) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	y1 := b.Linear.ForwardPooled(x, p)
	y2 := b.BN.ForwardPooled(y1, p)
	p.Put(y1)
	y3 := b.Act.ForwardPooled(y2, p)
	p.Put(y2)
	return y3
}

// Backward propagates through the block in reverse.
func (b *FC) Backward(grad *tensor.Tensor) *tensor.Tensor {
	grad = b.Act.Backward(grad)
	grad = b.BN.Backward(grad)
	return b.Linear.Backward(grad)
}

// Params returns the block's learnable parameters.
func (b *FC) Params() []*nn.Param {
	ps := b.Linear.Params()
	ps = append(ps, b.BN.Params()...)
	return ps
}

// MemoryBits returns the eBNN deployment footprint of the block.
func (b *FC) MemoryBits() int {
	return b.Linear.WeightBits() + 2*32*b.BN.C
}

// SyncWeights re-derives the block's binarized weights from the latent
// parameters, making subsequent inference forwards read-only.
func (b *FC) SyncWeights() { b.Linear.SyncWeights() }

// MemoryMeasurer is implemented by blocks and layers that can report their
// deployed memory footprint.
type MemoryMeasurer interface {
	MemoryBits() int
}

// TotalMemoryBytes sums the deployment footprint of a device section,
// rounding up to whole bytes. The paper reports that every end-device
// configuration evaluated fits in under 2 KB (§IV-F).
func TotalMemoryBytes(blocks ...MemoryMeasurer) int {
	bits := 0
	for _, b := range blocks {
		bits += b.MemoryBits()
	}
	return (bits + 7) / 8
}
