package bnn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// This file is the bnn half of the kernel-dispatch differential
// harness: XnorDot and the fused binarize+pack kernels are pinned
// bit-identical to their naive oracles on every dispatch path, over
// adversarial lengths (empty, single, one-off word and vector-width
// tails, primes) and adversarial float inputs (-0.0, NaN, ±Inf). The
// bit kernels are exact integer arithmetic, so unlike the float GEMMs
// there is no payload caveat: every byte must match.

// diffLens are the adversarial vector lengths: around the byte (8),
// word (64), AVX2 pack group (32) and popcount block (256-bit = 4
// words = 256 elements) boundaries, plus primes.
var diffLens = []int{0, 1, 7, 8, 9, 31, 32, 33, 63, 64, 65, 127, 128, 129, 255, 256, 257, 317, 512, 1024, 1031}

// forEachKernelPath runs fn once per supported dispatch path, forcing
// the path for the duration and restoring the previous one after.
func forEachKernelPath(t *testing.T, fn func(t *testing.T, p tensor.KernelPath)) {
	t.Helper()
	prev := tensor.CurrentKernelPath()
	defer func() {
		if err := tensor.SetKernelPath(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, p := range tensor.KernelPaths() {
		if err := tensor.SetKernelPath(p); err != nil {
			t.Fatalf("SetKernelPath(%v): %v", p, err)
		}
		fn(t, p)
	}
}

// fillSpecials fills dst with sign-ambiguous floats: negatives,
// positives, both zeros, ±Inf and NaN. The pack contract is v >= 0,
// under which -0.0 packs as 1 and NaN packs as 0 — the two cases a
// kernel built on the raw IEEE sign bit gets wrong.
func fillSpecials(dst []float32, rng *rand.Rand) {
	for i := range dst {
		switch rng.Intn(10) {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = float32(math.Copysign(0, -1))
		case 2:
			dst[i] = float32(math.Inf(1))
		case 3:
			dst[i] = float32(math.Inf(-1))
		case 4:
			dst[i] = float32(math.NaN())
		default:
			dst[i] = rng.Float32()*2 - 1
		}
	}
}

// packRef is the one-line-per-element reference the kernels are judged
// against, written independently of any of them.
func packRef(v []float32) []byte {
	out := make([]byte, (len(v)+7)/8)
	for i, x := range v {
		if x >= 0 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// TestPackSignsDiffAllPaths pins PackSigns, PackVector and
// PackSignsSample on every dispatch path to the reference packer, over
// adversarial lengths and -0.0/NaN/±Inf inputs.
func TestPackSignsDiffAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range diffLens {
		v := make([]float32, n)
		fillSpecials(v, rng)
		want := packRef(v)

		forEachKernelPath(t, func(t *testing.T, p tensor.KernelPath) {
			if n > 0 { // tensor.New rejects empty shapes
				tn := tensor.New(n)
				copy(tn.Data(), v)
				if got := PackSigns(tn); !bytes.Equal(got, want) {
					t.Fatalf("path=%v n=%d: PackSigns = %x, want %x", p, n, got, want)
				}
			}
			pv := PackVector(v)
			if got := pv.Bytes(); !bytes.Equal(got, want) {
				t.Fatalf("path=%v n=%d: PackVector bytes = %x, want %x", p, n, got, want)
			}
			if rem := n % 64; rem != 0 && len(pv.Words) > 0 {
				if tail := pv.Words[len(pv.Words)-1] &^ (1<<uint(rem) - 1); tail != 0 {
					t.Fatalf("path=%v n=%d: PackVector tail bits set: %x", p, n, tail)
				}
			}
		})
	}

	// Batched per-sample packing must byte-match whole-vector packing of
	// each row, on every path.
	const batch, dim = 3, 317
	bt := tensor.New(batch, dim)
	fillSpecials(bt.Data(), rng)
	forEachKernelPath(t, func(t *testing.T, p tensor.KernelPath) {
		for i := 0; i < batch; i++ {
			want := packRef(bt.Sample(i))
			if got := PackSignsSample(bt, i); !bytes.Equal(got, want) {
				t.Fatalf("path=%v sample %d: %x, want %x", p, i, got, want)
			}
		}
	})
}

// TestXnorDotDiffAllPaths pins XnorDot on every dispatch path against
// two independent oracles: the byte-wide XnorDotBytes kernel and a
// plain float sum over the ±1 sign values. Lengths cover every tail
// regime of the word and AVX2 popcount kernels.
func TestXnorDotDiffAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range diffLens {
		va := make([]float32, n)
		vb := make([]float32, n)
		wantDot := 0
		for i := 0; i < n; i++ {
			sa := rng.Intn(2)*2 - 1
			sb := rng.Intn(2)*2 - 1
			va[i] = float32(sa)
			vb[i] = float32(sb)
			wantDot += sa * sb
		}

		forEachKernelPath(t, func(t *testing.T, p tensor.KernelPath) {
			a := PackVector(va)
			b := PackVector(vb)
			got, err := XnorDot(a, b)
			if err != nil {
				t.Fatalf("path=%v n=%d: %v", p, n, err)
			}
			if got != wantDot {
				t.Fatalf("path=%v n=%d: XnorDot = %d, sign-sum oracle %d", p, n, got, wantDot)
			}
			ref, err := XnorDotBytes(n, a.Bytes(), b.Bytes())
			if err != nil {
				t.Fatalf("path=%v n=%d: %v", p, n, err)
			}
			if got != ref {
				t.Fatalf("path=%v n=%d: XnorDot = %d, XnorDotBytes oracle %d", p, n, got, ref)
			}
		})
	}
}

// TestPackedLinearDiffAllPaths runs a deployed layer end to end on
// every path: the integer pre-activations must be identical, pinning
// the Deploy packing and the forward kernel together.
func TestPackedLinearDiffAllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := NewBinaryLinear(rng, "diff", 317, 10)
	p := Deploy(l)
	x := make([]float32, 317)
	for i := range x {
		x[i] = float32(rng.Intn(2)*2 - 1)
	}

	var want []int
	forEachKernelPath(t, func(t *testing.T, kp tensor.KernelPath) {
		out, err := p.Forward(PackVector(x))
		if err != nil {
			t.Fatalf("path=%v: %v", kp, err)
		}
		if want == nil {
			want = out
			return
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("path=%v: output %d = %d, first path gave %d", kp, i, out[i], want[i])
			}
		}
	})
}
