package bnn

import (
	"math/bits"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// This file is the bnn side of the kernel dispatch layer: the XNOR
// hamming reduction behind XnorDot and the fused binarize+pack kernels
// behind PackSigns/PackVector follow the same naive|go|simd path
// selection as the tensor GEMM kernels (tensor.CurrentKernelPath,
// forced via the DDNN_KERNELS environment variable). All paths are
// exact integer/bit operations, so results are identical by
// construction; the differential tests pin that anyway.

// xnorHamming returns Σ popcount(a[i]^b[i]) over equal-length word
// slices, dispatched on the active kernel path. Callers mask partial
// tail words before handing them here.
func xnorHamming(aw, bw []uint64) int {
	switch tensor.CurrentKernelPath() {
	case tensor.KernelNaive:
		return xnorHammingBytes(aw, bw)
	case tensor.KernelSIMD:
		return xnorHammingSIMD(aw, bw)
	default:
		return xnorHammingWords(aw, bw)
	}
}

// xnorHammingWords is the portable optimized reduction: one 64-bit
// popcount per word (compiled to POPCNT where available).
func xnorHammingWords(aw, bw []uint64) int {
	h := 0
	for i, w := range aw {
		h += bits.OnesCount64(w ^ bw[i])
	}
	return h
}

// xnorHammingBytes is the naive oracle: byte-wide popcounts, the
// original eBNN kernel's width, reassociated over the word layout.
func xnorHammingBytes(aw, bw []uint64) int {
	h := 0
	for i, w := range aw {
		x := w ^ bw[i]
		h += bits.OnesCount8(uint8(x)) +
			bits.OnesCount8(uint8(x>>8)) +
			bits.OnesCount8(uint8(x>>16)) +
			bits.OnesCount8(uint8(x>>24)) +
			bits.OnesCount8(uint8(x>>32)) +
			bits.OnesCount8(uint8(x>>40)) +
			bits.OnesCount8(uint8(x>>48)) +
			bits.OnesCount8(uint8(x>>56))
	}
	return h
}

// packSignsInto fills dst (which must be zeroed, (len(src)+7)/8 bytes)
// with the sign bits of src — bit i set when src[i] >= 0 — dispatched
// on the active kernel path. This is the fused binarize+pack kernel:
// the float compare and the bit pack happen in one pass.
func packSignsInto(dst []byte, src []float32) {
	switch tensor.CurrentKernelPath() {
	case tensor.KernelNaive:
		packSignsNaive(dst, src, 0)
	case tensor.KernelSIMD:
		packSignsSIMD(dst, src)
	default:
		packSignsUnrolled(dst, src, 0)
	}
}

// packSignsNaive is the naive oracle: one test-and-set per element,
// starting at element index from (which must be a multiple of 8 so the
// partial byte is the last one).
func packSignsNaive(dst []byte, src []float32, from int) {
	for i := from; i < len(src); i++ {
		if src[i] >= 0 {
			dst[i/8] |= 1 << uint(i%8)
		}
	}
}

// packSignsUnrolled is the portable optimized kernel: eight sign tests
// build one byte in registers, written with a single store.
func packSignsUnrolled(dst []byte, src []float32, from int) {
	i := from
	for ; i+8 <= len(src); i += 8 {
		v := src[i : i+8 : i+8]
		var b byte
		if v[0] >= 0 {
			b |= 1 << 0
		}
		if v[1] >= 0 {
			b |= 1 << 1
		}
		if v[2] >= 0 {
			b |= 1 << 2
		}
		if v[3] >= 0 {
			b |= 1 << 3
		}
		if v[4] >= 0 {
			b |= 1 << 4
		}
		if v[5] >= 0 {
			b |= 1 << 5
		}
		if v[6] >= 0 {
			b |= 1 << 6
		}
		if v[7] >= 0 {
			b |= 1 << 7
		}
		dst[i>>3] = b
	}
	packSignsNaive(dst, src, i)
}

// packWords fills words (which must be zeroed, packedWords(len(v))
// entries) with the sign bits of v in PackedVector layout, dispatched
// on the active kernel path.
func packWords(words []uint64, v []float32) {
	switch tensor.CurrentKernelPath() {
	case tensor.KernelNaive:
		packWordsNaive(words, v, 0)
	case tensor.KernelSIMD:
		packWordsSIMD(words, v)
	default:
		packWordsGo(words, v)
	}
}

// packWordsNaive is the naive oracle over the word layout, starting at
// element index from (a multiple of 8).
func packWordsNaive(words []uint64, v []float32, from int) {
	for i := from; i < len(v); i++ {
		if v[i] >= 0 {
			words[i/64] |= 1 << uint(i%64)
		}
	}
}

// packWordsGo builds one byte of signs at a time and ors it into the
// word lane, the portable optimized kernel.
func packWordsGo(words []uint64, v []float32) {
	i := 0
	for ; i+8 <= len(v); i += 8 {
		s := v[i : i+8 : i+8]
		var b byte
		if s[0] >= 0 {
			b |= 1 << 0
		}
		if s[1] >= 0 {
			b |= 1 << 1
		}
		if s[2] >= 0 {
			b |= 1 << 2
		}
		if s[3] >= 0 {
			b |= 1 << 3
		}
		if s[4] >= 0 {
			b |= 1 << 4
		}
		if s[5] >= 0 {
			b |= 1 << 5
		}
		if s[6] >= 0 {
			b |= 1 << 6
		}
		if s[7] >= 0 {
			b |= 1 << 7
		}
		words[i>>6] |= uint64(b) << uint(i&63)
	}
	packWordsNaive(words, v, i)
}
