#include "textflag.h"

// Nibble popcount lookup table for VPSHUFB (both 128-bit lanes) and the
// low-nibble mask.
DATA popcntLUT<>+0(SB)/8, $0x0302020102010100
DATA popcntLUT<>+8(SB)/8, $0x0403030203020201
DATA popcntLUT<>+16(SB)/8, $0x0302020102010100
DATA popcntLUT<>+24(SB)/8, $0x0403030203020201
GLOBL popcntLUT<>(SB), RODATA|NOPTR, $32

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $32

// func xnorPopcntAVX2(a, b *uint64, quads int) int64
//
// Returns Σ popcount(a[i]^b[i]) over quads × 4 consecutive words using
// the PSHUFB nibble-lookup popcount (Mula's algorithm): per 32-byte
// chunk, XOR, split into nibbles, table-lookup per-byte counts, then
// VPSADBW folds the byte counts into qword lanes accumulated across the
// loop. Exact integer arithmetic — identical to the scalar kernels.
TEXT ·xnorPopcntAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ quads+16(FP), CX
	VMOVDQU popcntLUT<>(SB), Y4
	VMOVDQU nibbleMask<>(SB), Y5
	VPXOR Y6, Y6, Y6 // zero, for VPSADBW
	VPXOR Y7, Y7, Y7 // qword accumulator

	TESTQ CX, CX
	JE reduce

poploop:
	VMOVDQU (SI), Y0
	VPXOR (DI), Y0, Y0
	VPAND Y0, Y5, Y1   // low nibbles
	VPSRLW $4, Y0, Y2
	VPAND Y2, Y5, Y2   // high nibbles
	VPSHUFB Y1, Y4, Y1 // per-byte counts of low nibbles
	VPSHUFB Y2, Y4, Y2 // per-byte counts of high nibbles
	VPADDB Y2, Y1, Y1
	VPSADBW Y6, Y1, Y1 // fold bytes into 4 qword sums
	VPADDQ Y1, Y7, Y7
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNE poploop

reduce:
	VEXTRACTI128 $1, Y7, X0
	VPADDQ X0, X7, X0
	VPSHUFD $0x4E, X0, X1
	VPADDQ X1, X0, X0
	MOVQ X0, AX
	MOVQ AX, ret+24(FP)
	VZEROUPPER
	RET

// func packSignsAVX2(dst *byte, src *float32, groups int)
//
// Packs the signs of groups × 32 floats into groups × 4 bytes: bit i is
// set when src[i] >= 0. Each group of 8 floats is compared against zero
// with the ordered GE predicate (NaN packs as 0, -0.0 packs as 1,
// exactly the scalar `v >= 0` test) and the 8-lane mask extracted with
// VMOVMSKPS — the fused binarize+pack kernel.
TEXT ·packSignsAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ groups+16(FP), CX
	VXORPS Y3, Y3, Y3

	TESTQ CX, CX
	JE packdone

packloop:
	VMOVUPS (SI), Y0
	VCMPPS $13, Y3, Y0, Y0 // src >= 0, ordered (GE_OS)
	VMOVMSKPS Y0, AX
	VMOVUPS 32(SI), Y1
	VCMPPS $13, Y3, Y1, Y1
	VMOVMSKPS Y1, BX
	SHLQ $8, BX
	ORQ BX, AX
	VMOVUPS 64(SI), Y0
	VCMPPS $13, Y3, Y0, Y0
	VMOVMSKPS Y0, R8
	SHLQ $16, R8
	ORQ R8, AX
	VMOVUPS 96(SI), Y1
	VCMPPS $13, Y3, Y1, Y1
	VMOVMSKPS Y1, R9
	SHLQ $24, R9
	ORQ R9, AX
	MOVL AX, (DI)
	ADDQ $128, SI
	ADDQ $4, DI
	DECQ CX
	JNE packloop

packdone:
	VZEROUPPER
	RET
