package bnn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

func TestXnorDotKnownValues(t *testing.T) {
	tests := []struct {
		name string
		a, b []float32
		want int
	}{
		{"identical", []float32{1, 1, -1, -1}, []float32{1, 1, -1, -1}, 4},
		{"opposite", []float32{1, 1, 1, 1}, []float32{-1, -1, -1, -1}, -4},
		{"half", []float32{1, -1, 1, -1}, []float32{1, 1, 1, 1}, 0},
		{"odd length", []float32{1, -1, 1}, []float32{1, 1, 1}, 1},
		{"nine elements", []float32{1, 1, 1, 1, 1, 1, 1, 1, -1}, []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := XnorDot(PackVector(tt.a), PackVector(tt.b))
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("XnorDot = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestXnorDotMatchesFloatDotProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(nRaw uint8) bool {
		n := int(nRaw%40) + 1
		a := make([]float32, n)
		b := make([]float32, n)
		var want int
		for i := range a {
			a[i] = float32(rng.Intn(2)*2 - 1)
			b[i] = float32(rng.Intn(2)*2 - 1)
			want += int(a[i] * b[i])
		}
		got, err := XnorDot(PackVector(a), PackVector(b))
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestXnorDotRejectsMismatch(t *testing.T) {
	if _, err := XnorDot(PackVector([]float32{1}), PackVector([]float32{1, 1})); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

func TestPackedLinearMatchesFloatPath(t *testing.T) {
	// The deployed XNOR-popcount layer must agree exactly with the float
	// training path x·sign(W) for sign inputs.
	rng := rand.New(rand.NewSource(2))
	l := NewBinaryLinear(rng, "bl", 37, 5) // odd width exercises tail bits
	p := Deploy(l)

	x := tensor.New(1, 37)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.Intn(2)*2 - 1)
	}
	want := l.Forward(x, false)

	got, err := p.Forward(PackVector(x.Row(0)))
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if float32(got[j]) != want.At(0, j) {
			t.Errorf("output %d: packed %d vs float %g", j, got[j], want.At(0, j))
		}
	}
}

func TestPackedLinearMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewBinaryLinear(rng, "bl", 1024, 3)
	p := Deploy(l)
	// 1024 bits = 128 B per output column.
	if got := p.MemoryBytes(); got != 3*128 {
		t.Errorf("MemoryBytes = %d, want 384", got)
	}
	// The float representation would need 4 B per weight: 32× more.
	if 4*1024*3 < 30*p.MemoryBytes() {
		t.Error("packed representation not ≈32× smaller")
	}
}

func TestPackedLinearRejectsWrongWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Deploy(NewBinaryLinear(rng, "bl", 8, 2))
	if _, err := p.Forward(PackVector(make([]float32, 9))); err == nil {
		t.Error("accepted wrong input width")
	}
}
