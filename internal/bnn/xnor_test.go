package bnn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

func TestXnorDotKnownValues(t *testing.T) {
	tests := []struct {
		name string
		a, b []float32
		want int
	}{
		{"identical", []float32{1, 1, -1, -1}, []float32{1, 1, -1, -1}, 4},
		{"opposite", []float32{1, 1, 1, 1}, []float32{-1, -1, -1, -1}, -4},
		{"half", []float32{1, -1, 1, -1}, []float32{1, 1, 1, 1}, 0},
		{"odd length", []float32{1, -1, 1}, []float32{1, 1, 1}, 1},
		{"nine elements", []float32{1, 1, 1, 1, 1, 1, 1, 1, -1}, []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := XnorDot(PackVector(tt.a), PackVector(tt.b))
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("XnorDot = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestXnorDotMatchesFloatDotProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(nRaw uint8) bool {
		n := int(nRaw%40) + 1
		a := make([]float32, n)
		b := make([]float32, n)
		var want int
		for i := range a {
			a[i] = float32(rng.Intn(2)*2 - 1)
			b[i] = float32(rng.Intn(2)*2 - 1)
			want += int(a[i] * b[i])
		}
		got, err := XnorDot(PackVector(a), PackVector(b))
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestXnorDotWordMatchesByte checks the 64-bit-lane kernel against the
// byte-wide reference on randomized lengths, deliberately covering
// non-multiples of 64 and 8, exact word boundaries, and their
// neighbours.
func TestXnorDotWordMatchesByte(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{1, 7, 8, 9, 63, 64, 65, 127, 128, 129, 191, 192, 200}
	for i := 0; i < 60; i++ {
		lengths = append(lengths, 1+rng.Intn(300))
	}
	for _, n := range lengths {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.Intn(2)*2 - 1)
			b[i] = float32(rng.Intn(2)*2 - 1)
		}
		pa, pb := PackVector(a), PackVector(b)
		word, err := XnorDot(pa, pb)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		byteWide, err := XnorDotBytes(n, pa.Bytes(), pb.Bytes())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if word != byteWide {
			t.Errorf("n=%d: word kernel %d, byte kernel %d", n, word, byteWide)
		}
	}
}

// TestPackedVectorBytesRoundTrip checks that the word representation
// stays byte-compatible with the PackSigns wire form.
func TestPackedVectorBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 8, 9, 64, 65, 100, 128, 200} {
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(rng.Intn(2)*2 - 1)
		}
		p := PackVector(v)
		wire := PackSigns(tensor.FromSlice(append([]float32(nil), v...), n))
		got := p.Bytes()
		if len(got) != len(wire) {
			t.Fatalf("n=%d: %d bytes, PackSigns gives %d", n, len(got), len(wire))
		}
		for i := range wire {
			if got[i] != wire[i] {
				t.Fatalf("n=%d: byte %d = %02x, PackSigns %02x", n, i, got[i], wire[i])
			}
		}
		back, err := PackedVectorFromBytes(n, wire)
		if err != nil {
			t.Fatal(err)
		}
		if back.N != p.N || len(back.Words) != len(p.Words) {
			t.Fatalf("n=%d: round-trip size mismatch", n)
		}
		for i := range p.Words {
			if back.Words[i] != p.Words[i] {
				t.Fatalf("n=%d: word %d = %x, want %x", n, i, back.Words[i], p.Words[i])
			}
		}
	}
}

// TestPackedVectorFromBytesMasksTail checks that garbage bits past N in
// the last wire byte do not affect dot products.
func TestPackedVectorFromBytesMasksTail(t *testing.T) {
	n := 13
	clean := make([]byte, PackedSize(n))
	clean[0], clean[1] = 0xAB, 0x1F&0x1F
	dirty := append([]byte(nil), clean...)
	dirty[1] |= 0xE0 // bits 13..15 are past N
	pc, err := PackedVectorFromBytes(n, clean)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := PackedVectorFromBytes(n, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Words[0] != pd.Words[0] {
		t.Fatalf("tail bits leaked: %x vs %x", pc.Words[0], pd.Words[0])
	}
}

func TestPackedLinearForwardInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, in := range []int{5, 64, 100, 129} {
		l := NewBinaryLinear(rng, "bl", in, 7)
		p := Deploy(l)
		x := tensor.New(1, in)
		for i := range x.Data() {
			x.Data()[i] = float32(rng.Intn(2)*2 - 1)
		}
		want := l.Forward(x, false)
		dst := make([]int, 7)
		if err := p.ForwardInto(dst, PackVector(x.Row(0))); err != nil {
			t.Fatal(err)
		}
		for j, got := range dst {
			if float32(got) != want.At(0, j) {
				t.Errorf("in=%d output %d: packed %d vs float %g", in, j, got, want.At(0, j))
			}
		}
		if err := p.ForwardInto(make([]int, 6), PackVector(x.Row(0))); err == nil {
			t.Error("accepted wrong output width")
		}
		if err := p.ForwardInto(dst, PackVector(make([]float32, in+1))); err == nil {
			t.Error("accepted wrong input width")
		}
	}
}

func TestXnorDotRejectsMismatch(t *testing.T) {
	if _, err := XnorDot(PackVector([]float32{1}), PackVector([]float32{1, 1})); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

func TestPackedLinearMatchesFloatPath(t *testing.T) {
	// The deployed XNOR-popcount layer must agree exactly with the float
	// training path x·sign(W) for sign inputs.
	rng := rand.New(rand.NewSource(2))
	l := NewBinaryLinear(rng, "bl", 37, 5) // odd width exercises tail bits
	p := Deploy(l)

	x := tensor.New(1, 37)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.Intn(2)*2 - 1)
	}
	want := l.Forward(x, false)

	got, err := p.Forward(PackVector(x.Row(0)))
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if float32(got[j]) != want.At(0, j) {
			t.Errorf("output %d: packed %d vs float %g", j, got[j], want.At(0, j))
		}
	}
}

func TestPackedLinearMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewBinaryLinear(rng, "bl", 1024, 3)
	p := Deploy(l)
	// 1024 bits = 128 B per output column.
	if got := p.MemoryBytes(); got != 3*128 {
		t.Errorf("MemoryBytes = %d, want 384", got)
	}
	// The float representation would need 4 B per weight: 32× more.
	if 4*1024*3 < 30*p.MemoryBytes() {
		t.Error("packed representation not ≈32× smaller")
	}
}

func TestPackedLinearRejectsWrongWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Deploy(NewBinaryLinear(rng, "bl", 8, 2))
	if _, err := p.Forward(PackVector(make([]float32, 9))); err == nil {
		t.Error("accepted wrong input width")
	}
}
