package bnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

func TestBinarizeSigns(t *testing.T) {
	src := tensor.FromSlice([]float32{-0.5, 0, 0.5, -1e-9, 2}, 5, 1)
	dst := tensor.New(5, 1)
	Binarize(dst, src)
	want := []float32{-1, 1, 1, -1, 1}
	for i, v := range dst.Data() {
		if v != want[i] {
			t.Errorf("Binarize[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestBinaryActivationForwardIsSign(t *testing.T) {
	a := NewBinaryActivation()
	x := tensor.FromSlice([]float32{-2, -0.5, 0.5, 2}, 4, 1)
	y := a.Forward(x, false)
	want := []float32{-1, -1, 1, 1}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Errorf("sign[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestBinaryActivationSTEWindow(t *testing.T) {
	a := NewBinaryActivation()
	x := tensor.FromSlice([]float32{-2, -0.5, 0.5, 2}, 4, 1)
	a.Forward(x, true)
	g := tensor.FromSlice([]float32{1, 1, 1, 1}, 4, 1)
	dx := a.Backward(g)
	want := []float32{0, 1, 1, 0} // gradient only inside |x| ≤ 1
	for i, v := range dx.Data() {
		if v != want[i] {
			t.Errorf("STE grad[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestBinaryLinearUsesSignWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewBinaryLinear(rng, "bl", 3, 2)
	l.Latent.Value.CopyFrom(tensor.FromSlice([]float32{0.3, -0.7, -0.1, 0.9, 0.2, -0.4}, 3, 2))
	l.SyncWeights() // manual latent edits must re-sync before inference
	x := tensor.FromSlice([]float32{1, 1, 1}, 1, 3)
	y := l.Forward(x, false)
	// Effective weights are signs: [[+1,-1],[-1,+1],[+1,-1]] → y = [1, -1].
	if y.At(0, 0) != 1 || y.At(0, 1) != -1 {
		t.Errorf("binary linear output %v, want [1 -1]", y.Data())
	}
}

func TestBinaryLinearGradientFlowsToLatent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewBinaryLinear(rng, "bl", 4, 2)
	x := tensor.New(3, 4)
	x.FillUniform(rng, -1, 1)
	l.Forward(x, true)
	g := tensor.New(3, 2)
	g.Fill(1)
	nn.ZeroGrads(l.Params())
	l.Backward(g)
	if l.Latent.Grad.L2Norm() == 0 {
		t.Error("latent gradient is zero; straight-through estimator broken")
	}
}

func TestLatentClipAfterStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewBinaryLinear(rng, "bl", 2, 2)
	l.Latent.Value.Fill(0.99)
	l.Latent.Grad.Fill(-50) // huge gradient pushes latent far above 1
	nn.NewSGD(1, 0).Step(l.Params())
	for i, v := range l.Latent.Value.Data() {
		if v < -1 || v > 1 {
			t.Errorf("latent[%d] = %g, escaped clip window", i, v)
		}
	}
}

func TestBinaryConvOutputIsConvOfSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewBinaryConv2D(rng, "bc", 1, 1, 3, 1, 1)
	c.Latent.Value.Fill(0.25) // binarizes to all +1: box filter
	c.SyncWeights()
	x := tensor.New(1, 1, 3, 3)
	x.Fill(1)
	y := c.Forward(x, false)
	want := []float32{4, 6, 4, 6, 9, 6, 4, 6, 4}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Errorf("binary box conv[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestConvPShapesAndBinaryOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewConvP(rng, "convp", 3, 4)
	x := tensor.New(2, 3, 32, 32)
	x.FillUniform(rng, 0, 1)
	y := b.Forward(x, true)
	wantShape := []int{2, 4, 16, 16}
	for i, d := range wantShape {
		if y.Dim(i) != d {
			t.Fatalf("ConvP output shape %v, want %v (paper: f×16×16)", y.Shape(), wantShape)
		}
	}
	for i, v := range y.Data() {
		if v != 1 && v != -1 {
			t.Fatalf("ConvP output[%d] = %g, want ±1", i, v)
		}
	}
}

func TestFCShapesAndBinaryOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewFC(rng, "fc", 10, 6)
	x := tensor.New(4, 10)
	x.FillUniform(rng, -1, 1)
	y := b.Forward(x, true)
	if y.Dim(0) != 4 || y.Dim(1) != 6 {
		t.Fatalf("FC output shape %v, want [4 6]", y.Shape())
	}
	for i, v := range y.Data() {
		if v != 1 && v != -1 {
			t.Fatalf("FC output[%d] = %g, want ±1", i, v)
		}
	}
}

func TestConvPBackwardProducesLatentGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewConvP(rng, "convp", 3, 4)
	x := tensor.New(2, 3, 8, 8)
	x.FillUniform(rng, -0.5, 0.5)
	y := b.Forward(x, true)
	g := tensor.New(y.Shape()...)
	g.FillUniform(rng, -1, 1)
	nn.ZeroGrads(b.Params())
	dx := b.Backward(g)
	if !dx.SameShape(x) {
		t.Fatalf("input grad shape %v, want %v", dx.Shape(), x.Shape())
	}
	if b.Conv.Latent.Grad.L2Norm() == 0 {
		t.Error("ConvP latent gradient is zero")
	}
}

func TestPackUnpackRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		src := tensor.New(n)
		src.FillUniform(rng, -1, 1)
		bin := tensor.New(n)
		Binarize(bin, src)
		packed := PackSigns(src)
		if len(packed) != PackedSize(n) {
			return false
		}
		back, err := UnpackSigns(packed, n)
		if err != nil {
			return false
		}
		for i := range back.Data() {
			if back.Data()[i] != bin.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnpackSignsRejectsWrongLength(t *testing.T) {
	if _, err := UnpackSigns([]byte{0xFF}, 9); err == nil {
		t.Error("UnpackSigns accepted 1 byte for 9 elements")
	}
	if _, err := UnpackSigns([]byte{0xFF, 0x00, 0x00}, 9); err == nil {
		t.Error("UnpackSigns accepted 3 bytes for 9 elements")
	}
}

func TestPackedSizeMatchesEquationOne(t *testing.T) {
	// The second term of Eq. (1) charges f·o/8 bytes for the binarized
	// feature upload: f filters × o output elements, one bit each.
	f, o := 4, 16*16
	if got := PackedSize(f * o); got != f*o/8 {
		t.Errorf("PackedSize(%d) = %d, want %d", f*o, got, f*o/8)
	}
}

func TestDeviceSectionUnder2KB(t *testing.T) {
	// §IV-F: "For all settings, the NN layers stored on an end device
	// require under 2 KB of memory." Device section = ConvP(3→f) + FC block
	// + exit linear; check the largest evaluated f.
	rng := rand.New(rand.NewSource(9))
	for _, f := range []int{1, 2, 4, 8} {
		convp := NewConvP(rng, "convp", 3, f)
		fcIn := f * 16 * 16
		fc := NewFC(rng, "fc", fcIn, 3) // n = |C| nodes
		if got := TotalMemoryBytes(convp, fc); got >= 2048 {
			t.Errorf("device memory with f=%d filters = %d B, want < 2048 B", f, got)
		}
	}
}

func TestBinaryTrainingLearnsXOR(t *testing.T) {
	// A binarized MLP with enough hidden width must solve XOR, proving the
	// straight-through estimator trains end to end.
	rng := rand.New(rand.NewSource(10))
	model := nn.NewSequential(
		nn.NewLinear(rng, "in", 2, 16, true), // float first layer, as in BNN practice
		NewFC(rng, "h", 16, 16),
		nn.NewLinear(rng, "out", 16, 2, true),
	)
	opt := nn.NewAdam(0.01)
	xs := [][]float32{{-1, -1}, {-1, 1}, {1, -1}, {1, 1}}
	ys := []int{0, 1, 1, 0}
	x := tensor.New(4, 2)
	for i, row := range xs {
		x.Set(row[0], i, 0)
		x.Set(row[1], i, 1)
	}
	var acc float64
	for epoch := 0; epoch < 500; epoch++ {
		logits := model.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, ys, 1)
		nn.ZeroGrads(model.Params())
		model.Backward(grad)
		opt.Step(model.Params())
		acc = nn.Accuracy(model.Forward(x, false), ys)
		if acc == 1 {
			break
		}
	}
	if acc < 1 {
		t.Errorf("binary MLP accuracy on XOR = %g, want 1.0", acc)
	}
}

func TestMemoryBitsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewConvP(rng, "convp", 3, 4)
	// 4 filters × 3 channels × 3×3 weights = 108 bits + 2 BN params × 32
	// bits × 4 channels = 256 bits.
	if got, want := b.MemoryBits(), 108+256; got != want {
		t.Errorf("ConvP MemoryBits = %d, want %d", got, want)
	}
	fc := NewFC(rng, "fc", 8, 4)
	if got, want := fc.MemoryBits(), 32+256; got != want {
		t.Errorf("FC MemoryBits = %d, want %d", got, want)
	}
	if got := TotalMemoryBytes(b, fc); got != (108+256+32+256+7)/8 {
		t.Errorf("TotalMemoryBytes = %d", got)
	}
}

func TestBinaryLayersConvergeOnLinearlySeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	model := nn.NewSequential(
		NewFC(rng, "fc1", 2, 8),
		nn.NewLinear(rng, "out", 8, 2, true),
	)
	opt := nn.NewAdam(0.02)
	sample := func() (*tensor.Tensor, []int) {
		x := tensor.New(32, 2)
		labels := make([]int, 32)
		for i := 0; i < 32; i++ {
			c := rng.Intn(2)
			labels[i] = c
			off := float32(c*6 - 3)
			x.Set(off+float32(rng.NormFloat64())*0.5, i, 0)
			x.Set(off+float32(rng.NormFloat64())*0.5, i, 1)
		}
		return x, labels
	}
	for step := 0; step < 300; step++ {
		x, labels := sample()
		logits := model.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels, 1)
		nn.ZeroGrads(model.Params())
		model.Backward(grad)
		opt.Step(model.Params())
	}
	x, labels := sample()
	if acc := nn.Accuracy(model.Forward(x, false), labels); acc < 0.95 {
		t.Errorf("binary classifier accuracy = %g, want ≥0.95", acc)
	}
}

func TestPackedWeightsMatchSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewBinaryLinear(rng, "bl", 5, 3)
	packed := l.PackedWeights()
	back, err := UnpackSigns(packed, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range l.Latent.Value.Data() {
		want := float32(1)
		if v < 0 {
			want = -1
		}
		if back.Data()[i] != want {
			t.Errorf("packed weight %d = %g, want %g", i, back.Data()[i], want)
		}
	}
	if math.Abs(float64(len(packed))-math.Ceil(float64(15)/8)) > 0 {
		t.Errorf("packed length = %d, want 2", len(packed))
	}
}
