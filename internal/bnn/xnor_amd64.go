package bnn

import (
	"math/bits"
	"unsafe"
)

// xnorPopcntAVX2 (xnor_amd64.s) sums popcount(a[i]^b[i]) over quads×4
// consecutive words with the PSHUFB nibble-lookup popcount.
//
//go:noescape
func xnorPopcntAVX2(a, b *uint64, quads int) int64

// packSignsAVX2 (xnor_amd64.s) packs the signs of groups×32 floats into
// groups×4 bytes with VCMPPS(GE)+VMOVMSKPS.
//
//go:noescape
func packSignsAVX2(dst *byte, src *float32, groups int)

// xnorHammingSIMD runs the AVX2 popcount over 4-word chunks and
// finishes the remainder with scalar 64-bit popcounts.
func xnorHammingSIMD(aw, bw []uint64) int {
	h := 0
	quads := len(aw) / 4
	if quads > 0 {
		h = int(xnorPopcntAVX2(&aw[0], &bw[0], quads))
	}
	for i := quads * 4; i < len(aw); i++ {
		h += bits.OnesCount64(aw[i] ^ bw[i])
	}
	return h
}

// packSignsSIMD packs 32-float groups with the AVX2 kernel and finishes
// the tail (which starts on a byte boundary) with the scalar kernel.
func packSignsSIMD(dst []byte, src []float32) {
	groups := len(src) / 32
	if groups > 0 {
		packSignsAVX2(&dst[0], &src[0], groups)
	}
	packSignsNaive(dst, src, groups*32)
}

// packWordsSIMD packs into the word layout by viewing the word slice as
// bytes — on little-endian amd64, byte k of a uint64 holds bits
// 8k..8k+7, exactly the PackSigns byte layout, so the byte kernel fills
// the words in place. Tail bytes of the last word stay zero, preserving
// the bits-past-N invariant.
func packWordsSIMD(words []uint64, v []float32) {
	if len(words) == 0 {
		return
	}
	view := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
	packSignsSIMD(view, v)
}
