package bnn

import (
	"fmt"

	"github.com/ddnn/ddnn-go/internal/tensor"
)

// PackSigns bit-packs the signs of a tensor: bit i is 1 when element i is
// non-negative (+1 after binarization) and 0 otherwise (−1). Eight elements
// share a byte, which is the representation the paper's Eq. (1) assumes
// when charging f·o/8 bytes for a binarized feature upload. The compare
// and pack run as one fused kernel on the active dispatch path.
func PackSigns(t *tensor.Tensor) []byte {
	td := t.Data()
	out := make([]byte, (len(td)+7)/8)
	packSignsInto(out, td)
	return out
}

// UnpackSigns expands a bit-packed sign vector back into a ±1 tensor of the
// given shape.
func UnpackSigns(data []byte, shape ...int) (*tensor.Tensor, error) {
	t := tensor.New(shape...)
	n := t.Size()
	if need := (n + 7) / 8; len(data) != need {
		return nil, fmt.Errorf("bnn: packed data is %d bytes, shape %v needs %d", len(data), shape, need)
	}
	td := t.Data()
	for i := range td {
		if data[i/8]&(1<<uint(i%8)) != 0 {
			td[i] = 1
		} else {
			td[i] = -1
		}
	}
	return t, nil
}

// PackedSize returns the number of bytes PackSigns produces for n elements.
func PackedSize(n int) int { return (n + 7) / 8 }

// PackSignsSample bit-packs the signs of one leading-dimension sample
// block of a batched tensor, producing exactly the bytes PackSigns would
// produce for that sample alone — each sample of a micro-batch starts on
// its own byte boundary, so batched and per-sample uploads stay
// bit-identical.
func PackSignsSample(t *tensor.Tensor, i int) []byte {
	td := t.Sample(i)
	out := make([]byte, (len(td)+7)/8)
	packSignsInto(out, td)
	return out
}

// UnpackSignsInto expands a bit-packed sign vector into dst as ±1 values.
// It is the in-place analogue of UnpackSigns, used to fill one sample row
// of a pre-allocated batch tensor.
func UnpackSignsInto(dst []float32, data []byte) error {
	if need := (len(dst) + 7) / 8; len(data) != need {
		return fmt.Errorf("bnn: packed data is %d bytes, %d elements need %d", len(data), len(dst), need)
	}
	for i := range dst {
		if data[i/8]&(1<<uint(i%8)) != 0 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
	}
	return nil
}
