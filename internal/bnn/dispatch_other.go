//go:build !amd64

package bnn

// The SIMD entry points are unreachable on architectures without SIMD
// kernels — tensor.KernelSIMD cannot be selected there — but the
// dispatch switches still link them, so fall through to the portable
// optimized kernels.

func xnorHammingSIMD(aw, bw []uint64) int { return xnorHammingWords(aw, bw) }

func packSignsSIMD(dst []byte, src []float32) { packSignsUnrolled(dst, src, 0) }

func packWordsSIMD(words []uint64, v []float32) { packWordsGo(words, v) }
