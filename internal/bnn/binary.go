// Package bnn implements the binary-neural-network substrate the DDNN paper
// runs on its end devices: BinaryConnect-style binarized linear and
// convolutional layers (sign-binarized weights with straight-through latent
// gradients), the sign activation with a hard-tanh straight-through
// estimator, the fused ConvP and FC blocks of Fig. 3, and eBNN-style
// bit-packing used both to deploy weights on memory-limited devices and to
// transmit binarized feature maps to the cloud.
package bnn

import (
	"math/rand"

	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// Binarize writes sign(src) into dst: +1 for non-negative values, −1
// otherwise. dst and src must have equal sizes.
func Binarize(dst, src *tensor.Tensor) {
	dd, sd := dst.Data(), src.Data()
	for i, v := range sd {
		if v >= 0 {
			dd[i] = 1
		} else {
			dd[i] = -1
		}
	}
}

// clipLatent is the PostStep hook shared by binarized layers: BinaryConnect
// keeps latent weights in [-1, 1] so they cannot drift without affecting
// their binarization.
func clipLatent(p *nn.Param) { p.Value.Clamp(-1, 1) }

// WeightSyncer is implemented by layers and blocks whose deployed weights
// are derived from latent parameters and must be re-synced after the
// latents change, so that inference forwards stay write-free.
type WeightSyncer interface {
	SyncWeights()
}

// BinaryActivation applies sign(x) with the straight-through estimator on
// the backward pass: gradients flow only where |x| ≤ 1 (hard-tanh window),
// as in Courbariaux et al.
type BinaryActivation struct {
	x *tensor.Tensor
}

var _ nn.Layer = (*BinaryActivation)(nil)

// NewBinaryActivation constructs a sign activation.
func NewBinaryActivation() *BinaryActivation { return &BinaryActivation{} }

// Forward computes sign(x) ∈ {−1, +1}.
func (a *BinaryActivation) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		a.x = x
	}
	y := tensor.New(x.Shape()...)
	Binarize(y, x)
	return y
}

// ForwardPooled is the inference forward against a tensor pool; the
// caller owns the returned tensor and should Put it back when done.
func (a *BinaryActivation) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	y := p.GetDirty(x.Shape()...)
	Binarize(y, x)
	return y
}

// Backward passes the incoming gradient where the pre-activation magnitude
// was at most 1 and zeroes it elsewhere.
func (a *BinaryActivation) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.x == nil {
		panic("bnn: BinaryActivation.Backward called before Forward(train=true)")
	}
	dx := grad.Clone()
	xd, dd := a.x.Data(), dx.Data()
	for i, v := range xd {
		if v > 1 || v < -1 {
			dd[i] = 0
		}
	}
	return dx
}

// Params returns nil.
func (a *BinaryActivation) Params() []*nn.Param { return nil }

// BinaryConv2D is a convolution whose effective weights are sign(latent).
// The latent real-valued weights receive the straight-through gradient and
// are clipped to [-1, 1] after each optimizer step.
type BinaryConv2D struct {
	Latent *nn.Param
	inner  *nn.Conv2D
}

var _ nn.Layer = (*BinaryConv2D)(nil)

// NewBinaryConv2D constructs a binarized convolution (no bias: the batch
// norm that follows in a ConvP block provides the affine shift).
func NewBinaryConv2D(rng *rand.Rand, name string, inC, outC, kernel, stride, pad int) *BinaryConv2D {
	inner := nn.NewConv2D(rng, name, inC, outC, kernel, stride, pad, false)
	// The effective weights are always sign(latent), so the conv may use
	// the add/sub sign GEMM (bit-identical to the float kernel for ±1).
	inner.SignWeights = true
	latent := nn.NewParam(name+".latent", outC, inC, kernel, kernel)
	// Start the latent weights from the He initialization of the inner
	// conv, scaled into the clip window.
	latent.Value.CopyFrom(inner.Weight.Value)
	latent.Value.Clamp(-1, 1)
	latent.PostStep = clipLatent
	c := &BinaryConv2D{Latent: latent, inner: inner}
	c.SyncWeights()
	return c
}

// OutSize returns the spatial output size for an input of size in.
func (c *BinaryConv2D) OutSize(in int) int { return c.inner.OutSize(in) }

// OutChannels returns the number of output feature maps.
func (c *BinaryConv2D) OutChannels() int { return c.inner.OutC }

// Forward runs the convolution with binarized weights. Training forwards
// re-binarize the latent weights (which the optimizer moves every step);
// inference forwards use the weights as already synced, so concurrent
// inference never writes to shared model state — see SyncWeights.
func (c *BinaryConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		c.SyncWeights()
	}
	return c.inner.Forward(x, train)
}

// ForwardPooled is the inference forward against a tensor pool; the
// caller owns the returned tensor and should Put it back when done.
func (c *BinaryConv2D) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	return c.inner.ForwardPooled(x, p)
}

// SyncWeights rewrites the effective weights as sign(latent). It must be
// called after the latent weights change outside a training forward (state
// loading, manual optimizer steps) and before concurrent inference starts.
func (c *BinaryConv2D) SyncWeights() {
	Binarize(c.inner.Weight.Value, c.Latent.Value)
}

// Backward routes the weight gradient to the latent parameter
// (straight-through) and returns the input gradient.
func (c *BinaryConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	c.inner.Weight.Grad.Zero()
	dx := c.inner.Backward(grad)
	c.Latent.Grad.Add(c.inner.Weight.Grad)
	return dx
}

// Params returns the latent weights.
func (c *BinaryConv2D) Params() []*nn.Param { return []*nn.Param{c.Latent} }

// WeightBits returns the deployed (binarized) weight footprint in bits.
func (c *BinaryConv2D) WeightBits() int { return c.Latent.Value.Size() }

// PackedWeights returns the binarized weights bit-packed for deployment.
func (c *BinaryConv2D) PackedWeights() []byte {
	c.SyncWeights()
	return PackSigns(c.inner.Weight.Value)
}

// BinaryLinear is a fully connected layer whose effective weights are
// sign(latent), mirroring BinaryConv2D.
type BinaryLinear struct {
	Latent *nn.Param
	inner  *nn.Linear
}

var _ nn.Layer = (*BinaryLinear)(nil)

// NewBinaryLinear constructs a binarized fully connected layer without
// bias.
func NewBinaryLinear(rng *rand.Rand, name string, in, out int) *BinaryLinear {
	inner := nn.NewLinear(rng, name, in, out, false)
	latent := nn.NewParam(name+".latent", in, out)
	latent.Value.CopyFrom(inner.Weight.Value)
	latent.Value.Clamp(-1, 1)
	latent.PostStep = clipLatent
	l := &BinaryLinear{Latent: latent, inner: inner}
	l.SyncWeights()
	return l
}

// In returns the input width.
func (l *BinaryLinear) In() int { return l.inner.In }

// Out returns the output width.
func (l *BinaryLinear) Out() int { return l.inner.Out }

// Forward runs the linear transform with binarized weights. Like
// BinaryConv2D, only training forwards re-binarize; inference reads the
// synced weights so concurrent sessions never race — see SyncWeights.
func (l *BinaryLinear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		l.SyncWeights()
	}
	return l.inner.Forward(x, train)
}

// ForwardPooled is the inference forward against a tensor pool; the
// caller owns the returned tensor and should Put it back when done.
func (l *BinaryLinear) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	return l.inner.ForwardPooled(x, p)
}

// SyncWeights rewrites the effective weights as sign(latent); call it
// whenever the latent weights change outside a training forward.
func (l *BinaryLinear) SyncWeights() {
	Binarize(l.inner.Weight.Value, l.Latent.Value)
}

// Backward routes the weight gradient to the latent parameter and returns
// the input gradient.
func (l *BinaryLinear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.inner.Weight.Grad.Zero()
	dx := l.inner.Backward(grad)
	l.Latent.Grad.Add(l.inner.Weight.Grad)
	return dx
}

// Params returns the latent weights.
func (l *BinaryLinear) Params() []*nn.Param { return []*nn.Param{l.Latent} }

// WeightBits returns the deployed (binarized) weight footprint in bits.
func (l *BinaryLinear) WeightBits() int { return l.Latent.Value.Size() }

// PackedWeights returns the binarized weights bit-packed for deployment.
func (l *BinaryLinear) PackedWeights() []byte {
	l.SyncWeights()
	return PackSigns(l.inner.Weight.Value)
}
