module github.com/ddnn/ddnn-go

go 1.22
