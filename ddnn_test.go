package ddnn_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
)

// TestPublicAPIEndToEnd walks the README quick-start path: generate data,
// train, evaluate, pick a threshold, save/load, and run the cluster.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short mode")
	}
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Train, dcfg.Test = 240, 60
	train, test := ddnn.GenerateDataset(dcfg)

	cfg := ddnn.DefaultConfig()
	cfg.CloudFilters = 8
	model := ddnn.MustNewModel(cfg)
	if model.DeviceMemoryBytes() >= 2048 {
		t.Errorf("device memory %d B, want < 2 KB", model.DeviceMemoryBytes())
	}

	tc := ddnn.DefaultTrainConfig()
	tc.Epochs = 12
	if _, err := model.Train(train, tc); err != nil {
		t.Fatal(err)
	}

	res := model.Evaluate(test, nil, 32)
	policy := ddnn.NewPolicy(0.8, 1)
	overall := res.OverallAccuracy(policy)
	if overall < 0.3 {
		t.Errorf("overall accuracy %.3f below chance", overall)
	}
	l := res.LocalExitFraction(policy)
	if c := model.Cfg.CommCostBytes(l); c < 12 || c > 140 {
		t.Errorf("comm cost %.1f B outside Eq. (1) envelope [12, 140]", c)
	}

	// Persistence round trip.
	path := filepath.Join(t.TempDir(), "m.ddnn")
	if err := ddnn.SaveModel(path, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := ddnn.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	res2 := loaded.Evaluate(test, nil, 32)
	if res2.LocalAccuracy() != res.LocalAccuracy() {
		t.Error("loaded model disagrees with original")
	}

	// Serving runtime through the facade.
	eng, err := ddnn.NewEngine(loaded, test,
		ddnn.WithDeviceTimeout(2*time.Second),
		ddnn.WithMaxConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	r, err := eng.Classify(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exit != ddnn.ExitLocal && r.Exit != ddnn.ExitCloud {
		t.Errorf("unexpected exit %v", r.Exit)
	}
	batch, err := eng.ClassifyBatch(context.Background(), []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("got %d batch results, want 3", len(batch))
	}
}

func TestAggSchemeConstants(t *testing.T) {
	if ddnn.MP.String() != "MP" || ddnn.AP.String() != "AP" || ddnn.CC.String() != "CC" {
		t.Error("aggregation scheme constants miswired")
	}
}

func TestDefaultConfigIsPaperEvaluationArchitecture(t *testing.T) {
	cfg := ddnn.DefaultConfig()
	if cfg.Devices != 6 {
		t.Errorf("devices = %d, want 6", cfg.Devices)
	}
	if cfg.Classes != 3 {
		t.Errorf("classes = %d, want 3", cfg.Classes)
	}
	if cfg.DeviceFilters != 4 {
		t.Errorf("device filters = %d, want 4 (Fig. 7 setting)", cfg.DeviceFilters)
	}
	if cfg.LocalAgg != ddnn.MP || cfg.CloudAgg != ddnn.CC {
		t.Error("default aggregation must be MP-CC (Table I winner)")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}
