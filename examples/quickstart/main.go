// Quickstart: train a small DDNN on the synthetic multi-view dataset,
// run staged inference with a local exit threshold and report the
// accuracy measures and communication cost of §III-E/F, then serve the
// trained model through the concurrent Engine API.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A reduced dataset and epoch count keep the example fast; see
	// cmd/ddnn-bench for the full evaluation.
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Train, dcfg.Test = 300, 80
	train, test := ddnn.GenerateDataset(dcfg)
	fmt.Printf("dataset: %d train / %d test samples, %d devices\n",
		train.Len(), test.Len(), train.Devices())

	model := ddnn.MustNewModel(ddnn.DefaultConfig())
	fmt.Printf("model: %d parameters, %d B per device section (< 2 KB)\n",
		model.ParamCount(), model.DeviceMemoryBytes())

	tc := ddnn.DefaultTrainConfig()
	tc.Epochs = 20
	tc.Progress = func(epoch int, loss float64) {
		if (epoch+1)%5 == 0 {
			fmt.Printf("  epoch %3d: joint loss %.4f\n", epoch+1, loss)
		}
	}
	fmt.Println("jointly training device + cloud sections (equal exit weights)...")
	if _, err := model.Train(train, tc); err != nil {
		return err
	}

	res := model.Evaluate(test, nil, 32)
	fmt.Printf("\nlocal exit accuracy (100%% exit there): %.1f%%\n", res.LocalAccuracy()*100)
	fmt.Printf("cloud exit accuracy (100%% exit there): %.1f%%\n", res.CloudAccuracy()*100)

	policy := ddnn.NewPolicy(0.8, 1) // the paper's T=0.8 sweet spot
	l := res.LocalExitFraction(policy)
	fmt.Printf("\nstaged inference at T=0.8:\n")
	fmt.Printf("  overall accuracy:  %.1f%%\n", res.OverallAccuracy(policy)*100)
	fmt.Printf("  local exits:       %.1f%% of samples\n", l*100)
	fmt.Printf("  comm cost (Eq. 1): %.1f B/sample/device (raw offload: %d B)\n",
		model.Cfg.CommCostBytes(l), model.Cfg.RawOffloadBytes())

	// Serve the trained model: the Engine runs the full cluster (devices,
	// gateway, cloud) in-process and classifies sessions concurrently.
	eng, err := ddnn.NewEngine(model, test,
		ddnn.WithThreshold(0.8),
		ddnn.WithMaxConcurrency(8))
	if err != nil {
		return err
	}
	defer eng.Close()
	ids := make([]uint64, test.Len())
	for i := range ids {
		ids[i] = uint64(i)
	}
	start := time.Now()
	results, err := eng.ClassifyBatch(context.Background(), ids)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	localExits := 0
	for _, r := range results {
		if r.Exit == ddnn.ExitLocal {
			localExits++
		}
	}
	fmt.Printf("\nlive serving through the Engine (8 concurrent sessions):\n")
	fmt.Printf("  %d samples in %v (%.1f samples/s), %.1f%% exited locally\n",
		len(ids), elapsed.Round(time.Millisecond),
		float64(len(ids))/elapsed.Seconds(), 100*float64(localExits)/float64(len(ids)))
	return nil
}
