// Faults: demonstrates built-in fault tolerance (§IV-G) on the live
// serving Engine. A DDNN cluster keeps classifying while devices crash
// one by one; the gateway detects silent devices by timeout, masks them
// out of aggregation, and accuracy degrades gracefully instead of failing.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
}

func run() error {
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Train, dcfg.Test = 300, 80
	train, test := ddnn.GenerateDataset(dcfg)

	model := ddnn.MustNewModel(ddnn.DefaultConfig())
	tc := ddnn.DefaultTrainConfig()
	tc.Epochs = 20
	fmt.Println("training...")
	if _, err := model.Train(train, tc); err != nil {
		return err
	}

	eng, err := ddnn.NewEngine(model, test,
		ddnn.WithDeviceTimeout(300*time.Millisecond),
		ddnn.WithMaxFailures(0), // retry failed devices on every sample
		ddnn.WithMaxConcurrency(8))
	if err != nil {
		return err
	}
	defer eng.Close()

	ctx := context.Background()
	ids := make([]uint64, test.Len())
	for i := range ids {
		ids[i] = uint64(i)
	}
	labels := test.Labels(nil)
	evaluate := func(label string) error {
		results, err := eng.ClassifyBatch(ctx, ids)
		if err != nil {
			return err
		}
		correct := 0
		for i, res := range results {
			if res.Class == labels[i] {
				correct++
			}
		}
		fmt.Printf("  %-28s %5.1f%% accuracy\n", label, 100*float64(correct)/float64(len(ids)))
		return nil
	}

	fmt.Println("\nclassifying the test set on the live cluster (8 concurrent sessions):")
	if err := evaluate("all 6 devices healthy:"); err != nil {
		return err
	}

	// Kill devices one at a time, best-instrumented last.
	for _, d := range []int{5, 1, 3} {
		eng.SetDeviceFailed(d, true)
		if err := evaluate(fmt.Sprintf("after device %d crashed:", d+1)); err != nil {
			return err
		}
	}

	fmt.Println("\nrecovering all devices...")
	for d := 0; d < model.Cfg.Devices; d++ {
		eng.SetDeviceFailed(d, false)
	}
	if err := evaluate("all 6 devices recovered:"); err != nil {
		return err
	}
	fmt.Println("\nno retraining, reconfiguration or manual failover was involved:")
	fmt.Println("aggregation masks absent devices and the joint training has already")
	fmt.Println("taught every subset of devices to work toward the shared objective.")
	return nil
}
