// Faults: demonstrates built-in fault tolerance (§IV-G) on the live
// cluster runtime. A DDNN cluster keeps classifying while devices crash
// one by one; the gateway detects silent devices by timeout, masks them
// out of aggregation, and accuracy degrades gracefully instead of failing.
package main

import (
	"fmt"
	"os"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
}

func run() error {
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Train, dcfg.Test = 300, 80
	train, test := ddnn.GenerateDataset(dcfg)

	model := ddnn.MustNewModel(ddnn.DefaultConfig())
	tc := ddnn.DefaultTrainConfig()
	tc.Epochs = 20
	fmt.Println("training...")
	if _, err := model.Train(train, tc); err != nil {
		return err
	}

	gcfg := ddnn.DefaultGatewayConfig()
	gcfg.DeviceTimeout = 300 * time.Millisecond
	gcfg.MaxFailures = 0 // retry failed devices on every sample
	sim, err := ddnn.NewClusterSim(model, test, gcfg)
	if err != nil {
		return err
	}
	defer sim.Close()

	evaluate := func(label string) error {
		correct, n := 0, test.Len()
		labels := test.Labels(nil)
		for id := 0; id < n; id++ {
			res, err := sim.Gateway.Classify(uint64(id))
			if err != nil {
				return err
			}
			if res.Class == labels[id] {
				correct++
			}
		}
		fmt.Printf("  %-28s %5.1f%% accuracy\n", label, 100*float64(correct)/float64(n))
		return nil
	}

	fmt.Println("\nclassifying the test set on the live cluster:")
	if err := evaluate("all 6 devices healthy:"); err != nil {
		return err
	}

	// Kill devices one at a time, best-instrumented last.
	for _, d := range []int{5, 1, 3} {
		sim.Devices[d].SetFailed(true)
		if err := evaluate(fmt.Sprintf("after device %d crashed:", d+1)); err != nil {
			return err
		}
	}

	fmt.Println("\nrecovering all devices...")
	for _, d := range sim.Devices {
		d.SetFailed(false)
	}
	if err := evaluate("all 6 devices recovered:"); err != nil {
		return err
	}
	fmt.Println("\nno retraining, reconfiguration or manual failover was involved:")
	fmt.Println("aggregation masks absent devices and the joint training has already")
	fmt.Println("taught every subset of devices to work toward the shared objective.")
	return nil
}
