// Distributed: runs the full DDNN hierarchy as separate nodes over real
// TCP sockets on loopback, with simulated link characteristics, and
// reports per-exit latency and measured communication — the vertical
// scaling story of §V on a real protocol stack.
package main

import (
	"fmt"
	"os"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run() error {
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Train, dcfg.Test = 300, 60
	train, test := ddnn.GenerateDataset(dcfg)

	model := ddnn.MustNewModel(ddnn.DefaultConfig())
	tc := ddnn.DefaultTrainConfig()
	tc.Epochs = 18
	fmt.Println("training in the \"cloud\" (single process, §III-C)...")
	if _, err := model.Train(train, tc); err != nil {
		return err
	}

	// Deploy: every node listens on its own TCP port on loopback.
	tr := transport.TCP{}
	fmt.Println("deploying sections onto TCP nodes...")
	addrs := make([]string, model.Cfg.Devices)
	var devices []*cluster.Device
	for d := 0; d < model.Cfg.Devices; d++ {
		dev := cluster.NewDevice(model, d, cluster.DatasetFeed(test, d), nil)
		if err := dev.Serve(tr, "127.0.0.1:0"); err != nil {
			return err
		}
		defer dev.Close()
		devices = append(devices, dev)
		addrs[d] = dev.Addr()
		fmt.Printf("  device %d  @ %s\n", d+1, addrs[d])
	}
	cloud := cluster.NewCloud(model, nil)
	if err := cloud.Serve(tr, "127.0.0.1:0"); err != nil {
		return err
	}
	defer cloud.Close()
	fmt.Printf("  cloud     @ %s\n", cloud.Addr())

	gcfg := ddnn.DefaultGatewayConfig()
	gw, err := cluster.NewGateway(model, gcfg, tr, addrs, cloud.Addr(), nil)
	if err != nil {
		return err
	}
	defer gw.Close()

	localLat := metrics.NewLatencyRecorder()
	cloudLat := metrics.NewLatencyRecorder()
	labels := test.Labels(nil)
	correct := 0
	fmt.Printf("\nclassifying %d samples over TCP (T=%.1f)...\n", test.Len(), gcfg.Threshold)
	for id := 0; id < test.Len(); id++ {
		res, err := gw.Classify(uint64(id))
		if err != nil {
			return err
		}
		if res.Class == labels[id] {
			correct++
		}
		if res.Exit == wire.ExitLocal {
			localLat.Record(res.Latency)
		} else {
			cloudLat.Record(res.Latency)
		}
	}

	n := test.Len()
	fmt.Printf("\naccuracy:          %.1f%%\n", 100*float64(correct)/float64(n))
	fmt.Printf("local exits:       %d/%d samples, mean latency %v (p95 %v)\n",
		localLat.Count(), n, localLat.Mean().Round(time.Microsecond), localLat.Percentile(95).Round(time.Microsecond))
	fmt.Printf("cloud exits:       %d/%d samples, mean latency %v (p95 %v)\n",
		cloudLat.Count(), n, cloudLat.Mean().Round(time.Microsecond), cloudLat.Percentile(95).Round(time.Microsecond))
	perDev := float64(gw.Meter.Total()) / float64(model.Cfg.Devices) / float64(n)
	fmt.Printf("payload per device: %.1f B/sample (Eq. 1 predicts %.1f B at this exit rate)\n",
		perDev, model.Cfg.CommCostBytes(float64(localLat.Count())/float64(n)))
	fmt.Printf("raw-offload baseline would cost %d B/sample\n", model.Cfg.RawOffloadBytes())
	return nil
}
