// Distributed: runs the full DDNN hierarchy as separate nodes over real
// TCP sockets on loopback and fronts them with the Engine — concurrent,
// context-aware sessions over a real protocol stack — reporting per-exit
// latency, throughput and measured communication (the vertical scaling
// story of §V).
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run() error {
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Train, dcfg.Test = 300, 60
	train, test := ddnn.GenerateDataset(dcfg)

	model := ddnn.MustNewModel(ddnn.DefaultConfig())
	tc := ddnn.DefaultTrainConfig()
	tc.Epochs = 18
	fmt.Println("training in the \"cloud\" (single process, §III-C)...")
	if _, err := model.Train(train, tc); err != nil {
		return err
	}

	// Deploy: every node listens on its own TCP port on loopback.
	tr := transport.TCP{}
	fmt.Println("deploying sections onto TCP nodes...")
	addrs := make([]string, model.Cfg.Devices)
	for d := 0; d < model.Cfg.Devices; d++ {
		dev := cluster.NewDevice(model, d, cluster.DatasetFeed(test, d), nil)
		if err := dev.Serve(tr, "127.0.0.1:0"); err != nil {
			return err
		}
		defer dev.Close()
		addrs[d] = dev.Addr()
		fmt.Printf("  device %d  @ %s\n", d+1, addrs[d])
	}
	cloud := cluster.NewCloud(model, nil)
	if err := cloud.Serve(tr, "127.0.0.1:0"); err != nil {
		return err
	}
	defer cloud.Close()
	fmt.Printf("  cloud     @ %s\n", cloud.Addr())

	// Front the remote nodes with an Engine: each Classify is a session
	// multiplexed over the shared TCP links.
	ctx := context.Background()
	eng, err := ddnn.Connect(ctx, model, addrs, []string{cloud.Addr()},
		ddnn.WithThreshold(0.8),
		ddnn.WithMaxConcurrency(8))
	if err != nil {
		return err
	}
	defer eng.Close()

	n := test.Len()
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	fmt.Printf("\nclassifying %d samples over TCP (T=0.8, 8 concurrent sessions)...\n", n)
	start := time.Now()
	results, err := eng.ClassifyBatch(ctx, ids)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	localLat := metrics.NewLatencyRecorder()
	cloudLat := metrics.NewLatencyRecorder()
	labels := test.Labels(nil)
	correct := 0
	for i, res := range results {
		if res.Class == labels[i] {
			correct++
		}
		if res.Exit == wire.ExitLocal {
			localLat.Record(res.Latency)
		} else {
			cloudLat.Record(res.Latency)
		}
	}

	fmt.Printf("\nthroughput:        %.1f samples/s (%v total)\n", float64(n)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	fmt.Printf("accuracy:          %.1f%%\n", 100*float64(correct)/float64(n))
	fmt.Printf("local exits:       %d/%d samples, mean latency %v (p95 %v)\n",
		localLat.Count(), n, localLat.Mean().Round(time.Microsecond), localLat.Percentile(95).Round(time.Microsecond))
	fmt.Printf("cloud exits:       %d/%d samples, mean latency %v (p95 %v)\n",
		cloudLat.Count(), n, cloudLat.Mean().Round(time.Microsecond), cloudLat.Percentile(95).Round(time.Microsecond))
	perDev := float64(eng.PayloadBytes()) / float64(model.Cfg.Devices) / float64(n)
	fmt.Printf("payload per device: %.1f B/sample (Eq. 1 predicts %.1f B at this exit rate)\n",
		perDev, model.Cfg.CommCostBytes(float64(localLat.Count())/float64(n)))
	fmt.Printf("raw-offload baseline would cost %d B/sample\n", model.Cfg.RawOffloadBytes())
	return nil
}
