// Multiview: demonstrates automatic sensor fusion (§III-B, §IV-E). Six
// cameras observe the same objects from different viewpoints with very
// different quality; individually none of them classifies well, but the
// jointly-trained DDNN fuses their features and beats the best camera by a
// wide margin at both the local and cloud exit points.
package main

import (
	"context"
	"fmt"
	"os"

	ddnn "github.com/ddnn/ddnn-go"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multiview:", err)
		os.Exit(1)
	}
}

func run() error {
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Train, dcfg.Test = 400, 100
	train, test := ddnn.GenerateDataset(dcfg)

	cfg := ddnn.DefaultConfig()
	tc := ddnn.DefaultTrainConfig()
	tc.Epochs = 12

	fmt.Println("training an individual model per camera (no fusion)...")
	best := 0.0
	for d := 0; d < cfg.Devices; d++ {
		im, err := ddnn.NewIndividualModel(cfg, d)
		if err != nil {
			return err
		}
		if _, err := im.Train(train, tc); err != nil {
			return err
		}
		acc := im.Accuracy(test, 32)
		if acc > best {
			best = acc
		}
		fmt.Printf("  camera %d alone: %5.1f%%\n", d+1, acc*100)
	}

	fmt.Println("\njointly training the fused DDNN over all six cameras...")
	tc.Epochs = 25
	model := ddnn.MustNewModel(cfg)
	if _, err := model.Train(train, tc); err != nil {
		return err
	}
	res := model.Evaluate(test, nil, 32)
	policy := ddnn.NewPolicy(0.8, 1)

	fmt.Printf("\n                     best single camera: %5.1f%%\n", best*100)
	fmt.Printf("  DDNN local exit (fused, on-gateway):  %5.1f%%\n", res.LocalAccuracy()*100)
	fmt.Printf("  DDNN cloud exit (fused, offloaded):   %5.1f%%\n", res.CloudAccuracy()*100)
	fmt.Printf("  DDNN overall (staged, T=0.8):         %5.1f%%\n", res.OverallAccuracy(policy)*100)

	// The same staged decisions, measured on the live serving Engine with
	// concurrent sessions instead of in-process evaluation.
	eng, err := ddnn.NewEngine(model, test,
		ddnn.WithThreshold(0.8),
		ddnn.WithMaxConcurrency(8))
	if err != nil {
		return err
	}
	defer eng.Close()
	ids := make([]uint64, test.Len())
	for i := range ids {
		ids[i] = uint64(i)
	}
	results, err := eng.ClassifyBatch(context.Background(), ids)
	if err != nil {
		return err
	}
	labels := test.Labels(nil)
	correct := 0
	for i, r := range results {
		if r.Class == labels[i] {
			correct++
		}
	}
	fmt.Printf("  DDNN served live (Engine, staged):    %5.1f%%\n", 100*float64(correct)/float64(len(ids)))

	fmt.Println("\nthe fusion gain comes from joint training: each camera's filters")
	fmt.Println("are tuned to its own viewpoint while optimizing one shared objective.")
	return nil
}
