// Package ddnn is a Go implementation of Distributed Deep Neural Networks
// (DDNNs) over the cloud, the edge and end devices, reproducing
// Teerapittayanon, McDanel & Kung, ICDCS 2017 (arXiv:1709.01921).
//
// A DDNN is a single jointly-trained deep network whose sections are
// mapped onto a distributed computing hierarchy. End devices run small
// binarized (BNN/eBNN) sections next to their sensors and send a compact
// class-summary vector to a local aggregator; samples the local exit is
// confident about (normalized entropy ≤ T) are classified immediately,
// while hard samples upload bit-packed binarized feature maps up the
// hierarchy for further NN-layer processing. Models built with an edge
// tier (Config.UseEdge, Fig. 2 configs d/e) escalate in three stages —
// local → edge → cloud: the edge node aggregates the device feature maps,
// runs the edge section and answers mid-confidence samples at its own
// exit (ExitEdge); only samples that miss both lower exits pay the WAN
// hop, as the edge forwards their bit-packed edge feature maps to the
// cloud. Aggregation across geographically distributed devices (max
// pooling, average pooling or concatenation) is learned during joint
// training, which gives the system automatic sensor fusion and fault
// tolerance.
//
// # Quick start
//
//	train, test := ddnn.GenerateDataset(ddnn.DefaultDatasetConfig())
//	model := ddnn.MustNewModel(ddnn.DefaultConfig())
//	model.Train(train, ddnn.DefaultTrainConfig())
//	res := model.Evaluate(test, nil, 32)
//	policy := ddnn.NewPolicy(0.8, 1) // local exit threshold T=0.8
//	fmt.Println(res.OverallAccuracy(policy), res.LocalExitFraction(policy))
//
// # Serving
//
// The Engine is the serving entry point: it runs the trained DDNN as an
// always-on cluster — device nodes, gateway, and replica pools for the
// edge and cloud tiers (WithEdgeReplicas / WithCloudReplicas) — and
// classifies any number of samples concurrently. Every call is a
// context-aware session; sessions are multiplexed over the node links,
// load-balanced across healthy upstream replicas with mid-session
// failover, and bounded by the engine's concurrency limit:
//
//	eng, _ := ddnn.NewEngine(model, test,
//		ddnn.WithThreshold(0.8),
//		ddnn.WithMaxConcurrency(32))
//	defer eng.Close()
//	res, err := eng.Classify(ctx, 7)          // one session
//	batch, err := eng.ClassifyBatch(ctx, ids) // concurrent sessions
//
// Use Connect instead of NewEngine to front nodes that run as separate
// processes over TCP (cmd/ddnn-device, cmd/ddnn-edge, cmd/ddnn-cloud):
// the gateway then dials the devices plus its upstream tier — the edge
// node for UseEdge models, the cloud otherwise.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/core — the DDNN model, joint training, staged inference
//   - internal/bnn — binarized layers and the fused ConvP/FC blocks
//   - internal/agg — MP/AP/CC aggregation with gradient routing
//   - internal/branchy — early-exit policies and threshold search
//   - internal/dataset — the synthetic multi-view multi-camera dataset
//   - internal/cluster — the concurrent distributed runtime and Engine
//   - internal/experiments — regeneration of every paper table and figure
package ddnn

import (
	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/modelio"
)

// Core model types.
type (
	// Config describes a DDNN architecture (devices, filters, aggregation
	// schemes, optional edge tier).
	Config = core.Config
	// Model is a DDNN: per-device sections, aggregators, optional edge
	// tier and the cloud section, trained jointly.
	Model = core.Model
	// TrainConfig holds the training hyper-parameters (paper defaults:
	// Adam α=0.001, 100 epochs).
	TrainConfig = core.TrainConfig
	// EvalResult stores per-sample exit probabilities, from which all
	// §III-F accuracy measures derive.
	EvalResult = core.EvalResult
	// IndividualModel is the per-device baseline trained separately from
	// any DDNN.
	IndividualModel = core.IndividualModel
	// Logits bundles the raw class scores at each exit point.
	Logits = core.Logits
)

// Aggregation schemes.
type (
	// AggScheme selects max pooling (MP), average pooling (AP) or
	// concatenation (CC) at an exit point.
	AggScheme = agg.Scheme
)

// Aggregation scheme constants (§III-B).
const (
	MP = agg.MP
	AP = agg.AP
	CC = agg.CC
)

// Early-exit policy types.
type (
	// Policy holds one normalized-entropy threshold per exit point.
	Policy = branchy.Policy
	// SweepPoint is one row of a threshold sweep (Table II).
	SweepPoint = branchy.SweepPoint
)

// Dataset types.
type (
	// Dataset is an in-memory multi-view dataset.
	Dataset = dataset.Dataset
	// DatasetConfig controls the synthetic MVMC generator.
	DatasetConfig = dataset.Config
)

// Cluster runtime types.
type (
	// GatewayConfig controls the local aggregator node.
	GatewayConfig = cluster.GatewayConfig
)

// DefaultConfig returns the architecture evaluated in the paper's §IV: six
// end devices with 4-filter ConvP blocks, MP local aggregation and CC
// cloud aggregation.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewModel builds a DDNN from a configuration.
func NewModel(cfg Config) (*Model, error) { return core.NewModel(cfg) }

// MustNewModel is NewModel for known-good configs; it panics on error.
func MustNewModel(cfg Config) *Model { return core.MustNewModel(cfg) }

// DefaultTrainConfig returns the paper's training hyper-parameters.
func DefaultTrainConfig() TrainConfig { return core.DefaultTrainConfig() }

// KernelPath reports the active compute-kernel dispatch path ("naive",
// "go" or "simd"): the best supported path by default, or the one
// forced via the DDNN_KERNELS environment variable. All paths produce
// identical classifications; serving binaries log this at startup.
func KernelPath() string { return core.KernelPath() }

// NewIndividualModel builds the standalone baseline for one device.
func NewIndividualModel(cfg Config, device int) (*IndividualModel, error) {
	return core.NewIndividualModel(cfg, device)
}

// NewPolicy builds an exit policy from per-exit entropy thresholds,
// ordered local (edge) cloud. The final exit always classifies.
func NewPolicy(thresholds ...float64) Policy { return branchy.NewPolicy(thresholds...) }

// DefaultDatasetConfig returns the synthetic multi-view multi-camera
// dataset configuration used in the evaluation (680 train / 171 test, six
// cameras, three classes).
func DefaultDatasetConfig() DatasetConfig { return dataset.DefaultConfig() }

// GenerateDataset builds the train and test splits; it panics on an
// invalid configuration (use dataset.Generate for error handling).
func GenerateDataset(cfg DatasetConfig) (train, test *Dataset) {
	return dataset.MustGenerate(cfg)
}

// SaveModel writes a trained model to a file.
func SaveModel(path string, m *Model) error { return modelio.SaveFile(path, m) }

// SaveModelVersion atomically writes a trained model to a file as a
// versioned artifact (temp file + fsync + rename): the model version is
// stamped into the header, every tensor is checksummed, and a crash
// mid-write can never leave a torn file behind. version must be
// nonzero — zero is the wire's "active version" sentinel.
func SaveModelVersion(path string, m *Model, version uint64) error {
	return modelio.SaveFileAtomic(path, m, version)
}

// LoadModel reads a trained model from a file.
func LoadModel(path string) (*Model, error) { return modelio.LoadFile(path) }

// Typed model-artifact errors, for errors.Is against LoadModel and
// Engine.RegisterModelBytes results.
var (
	// ErrCorruptModel reports an artifact that failed structural or
	// checksum validation.
	ErrCorruptModel = modelio.ErrCorruptModel
	// ErrModelFormatUnsupported reports an artifact written by a newer
	// format revision than this build understands.
	ErrModelFormatUnsupported = modelio.ErrVersionUnsupported
)

// DefaultGatewayConfig returns the cluster gateway defaults (T=0.8).
func DefaultGatewayConfig() GatewayConfig { return cluster.DefaultGatewayConfig() }
