// Command linkcheck validates relative markdown links so the docs can't
// rot silently: every `[text](target)` in the given files/directories
// must resolve to an existing file, and anchors (`file.md#heading` or
// `#heading`) must match a heading in the target document. External
// links (http/https/mailto) are not fetched — CI must not depend on the
// network.
//
// Usage:
//
//	go run ./tools/linkcheck PATH [PATH...]
//
// Directories are scanned (non-recursively) for *.md files. Exit status
// 1 and one line per finding when any link is broken.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links; images share the syntax and are
// checked the same way.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRe matches ATX headings, whose GitHub anchor slugs we emulate.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.*)$`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck PATH [PATH...]")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		fi, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		if !fi.IsDir() {
			files = append(files, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
				files = append(files, filepath.Join(arg, e.Name()))
			}
		}
	}
	bad := 0
	for _, f := range files {
		for _, finding := range checkFile(f) {
			fmt.Println(finding)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", bad)
		os.Exit(1)
	}
}

// checkFile validates every relative link in one markdown file.
func checkFile(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var findings []string
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue // external; not fetched
		}
		file, anchor, _ := strings.Cut(target, "#")
		resolved := path
		if file != "" {
			resolved = filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(resolved); err != nil {
				findings = append(findings, fmt.Sprintf("%s: broken link %q: %s does not exist", path, target, resolved))
				continue
			}
		}
		if anchor == "" {
			continue
		}
		if !strings.HasSuffix(resolved, ".md") {
			continue // anchors only checked in markdown targets
		}
		if !hasAnchor(resolved, anchor) {
			findings = append(findings, fmt.Sprintf("%s: broken anchor %q: no heading slugs to %q in %s", path, target, anchor, resolved))
		}
	}
	return findings
}

// hasAnchor reports whether the markdown file has a heading whose
// GitHub-style slug equals the anchor.
func hasAnchor(path, anchor string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	for _, m := range headingRe.FindAllStringSubmatch(string(data), -1) {
		if slugify(m[1]) == strings.ToLower(anchor) {
			return true
		}
	}
	return false
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// strip everything but letters, digits, spaces and hyphens, then turn
// spaces into hyphens.
func slugify(heading string) string {
	heading = strings.TrimSpace(strings.ToLower(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_':
			b.WriteRune(r)
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			// punctuation is dropped
		}
	}
	return b.String()
}
