// Command doccheck enforces the repository's godoc contract: every
// exported identifier in the packages it is pointed at — package-level
// functions, methods, types, consts, vars, and exported fields of
// exported structs — must carry a doc comment. It is the CI docs gate's
// replacement for an external linter, so documentation on the serving
// API cannot rot silently.
//
// Usage:
//
//	go run ./tools/doccheck DIR [DIR...]
//
// Each DIR is one package directory (not recursive). Exit status 1 and
// one line per finding when anything exported is undocumented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck DIR [DIR...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		findings, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		bad += len(findings)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns one
// finding per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return findings, nil
}

// checkFunc flags undocumented exported functions and methods (methods
// only when the receiver's base type is exported too).
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	what, name := "function", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		what, name = "method", recv+"."+d.Name.Name
	}
	report(d.Pos(), what, name)
}

// receiverName unwraps a method receiver type to its base identifier.
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverName(t.X)
	default:
		return ""
	}
}

// checkGen flags undocumented exported types, consts and vars, plus
// exported fields of exported struct types. A doc comment on the decl
// covers grouped specs; a spec-level doc or trailing line comment
// counts too.
func checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			if !s.Name.IsExported() {
				continue
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				checkFields(s.Name.Name, st, report)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// checkFields flags undocumented exported fields of an exported struct.
func checkFields(typeName string, st *ast.StructType, report func(token.Pos, string, string)) {
	for _, f := range st.Fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name.Pos(), "field", typeName+"."+name.Name)
			}
		}
	}
}
