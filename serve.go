package ddnn

import (
	"context"
	"log/slog"
	"time"

	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// ExitPoint identifies where a sample was classified.
type ExitPoint = wire.ExitPoint

// LinkProfile describes a simulated network link (one-way latency plus
// serialization bandwidth).
type LinkProfile = transport.LinkProfile

// Canned link profiles for the hierarchy tiers (§IV-B).
var (
	// DeviceToGatewayLink models a low-power local wireless uplink.
	DeviceToGatewayLink = transport.DeviceToGateway
	// GatewayToEdgeLink models the short hop to a nearby edge (fog) node.
	GatewayToEdgeLink = transport.GatewayToEdge
	// GatewayToCloudLink models a WAN path to a datacenter.
	GatewayToCloudLink = transport.GatewayToCloud
)

// Exit points in hierarchy order.
const (
	ExitLocal = wire.ExitLocal
	ExitEdge  = wire.ExitEdge
	ExitCloud = wire.ExitCloud
)

// Result is the outcome of one classification session: the predicted
// class, the exit point that produced it, the class probabilities, the
// local-aggregate entropy, device presence and wall-clock latency.
type Result = cluster.Result

// Tensor is the dense float32 tensor type used for uploaded sensor
// views (see Engine.ClassifyUpload).
type Tensor = tensor.Tensor

// NewTensor allocates a zeroed tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// Uploaded sensor view dimensions: each device view of a sample is a
// [1, ImageC, ImageH, ImageW] tensor.
const (
	ImageC = dataset.ImageC
	ImageH = dataset.ImageH
	ImageW = dataset.ImageW
)

// ShedLevel selects how aggressively an overloaded serving system
// degrades answer quality to preserve availability: each level forces
// the exit pipeline to stop one stage earlier, so requests are answered
// by a cheaper exit instead of queueing for the full hierarchy.
type ShedLevel = cluster.ShedLevel

// Shed levels in escalation order.
const (
	// ShedNone runs the configured exit pipeline unchanged.
	ShedNone = cluster.ShedNone
	// ShedPreferEdge caps three-tier hierarchies at the edge exit (the
	// cloud is never consulted); two-tier hierarchies degrade straight to
	// the local exit.
	ShedPreferEdge = cluster.ShedPreferEdge
	// ShedLocalOnly answers every sample at the device-local exit.
	ShedLocalOnly = cluster.ShedLocalOnly
)

// Instrumentation holds optional serving-observability callbacks; see
// Engine.SetInstrumentation.
type Instrumentation = cluster.Instrumentation

// TopologyConfig is a versioned snapshot of the hierarchy's runtime
// shape — occupied device slots and configured tenants; see
// Engine.Topology.
type TopologyConfig = cluster.TopologyConfig

// TenantConfig selects the exit-threshold policy one tenant's traffic
// runs under; see Engine.SetTenant.
type TenantConfig = cluster.TenantConfig

// Typed serving errors, for errors.Is against Engine results. ErrCanceled
// and ErrDeadlineExceeded also wrap the corresponding context error.
var (
	ErrCanceled          = cluster.ErrCanceled
	ErrDeadlineExceeded  = cluster.ErrDeadlineExceeded
	ErrEngineClosed      = cluster.ErrClosed
	ErrNoSummaries       = cluster.ErrNoSummaries
	ErrCloudUnavailable  = cluster.ErrCloudUnavailable
	ErrEdgeUnavailable   = cluster.ErrEdgeUnavailable
	ErrNoHealthyReplica  = cluster.ErrNoHealthyReplica
	ErrTooManyDevices    = cluster.ErrTooManyDevices
	ErrUploadUnsupported = cluster.ErrUploadUnsupported
	// ErrDeviceSlotMismatch reports a device-slot reference the model's
	// hierarchy cannot satisfy (too many construction addresses, or an
	// admission/removal naming a slot out of range). Fewer addresses than
	// slots is not an error: the engine starts with a partial device set
	// and admits the rest at runtime.
	ErrDeviceSlotMismatch = cluster.ErrDeviceSlotMismatch
	// ErrModelVersionUnknown reports a model version no registry holds —
	// a rollout or session pinned to a version the fleet never loaded.
	ErrModelVersionUnknown = cluster.ErrModelVersionUnknown
	// ErrDuplicateModelVersion reports a RegisterModel version collision.
	ErrDuplicateModelVersion = cluster.ErrDuplicateModelVersion
	// ErrModelConfigMismatch reports a registered model whose architecture
	// differs from the serving fleet's.
	ErrModelConfigMismatch = cluster.ErrModelConfigMismatch
	// ErrRolloutInProgress reports a RolloutModel call racing another;
	// rollouts are serialized fleet-wide.
	ErrRolloutInProgress = cluster.ErrRolloutInProgress
	// ErrRolloutFailed reports a rollout that failed a canary (or lost a
	// replica mid-flight) and automatically rolled the fleet back to the
	// prior active version.
	ErrRolloutFailed = cluster.ErrRolloutFailed
)

// Rollout lifecycle states, as reported by Engine.RolloutState.
const (
	// RolloutIdle means no rollout is running and the last one (if any)
	// completed.
	RolloutIdle = cluster.RolloutIdle
	// RolloutRolling means a rolling reload is flipping replicas now.
	RolloutRolling = cluster.RolloutRolling
	// RolloutRolledBack means the last rollout failed its canary and the
	// fleet was restored to the prior version.
	RolloutRolledBack = cluster.RolloutRolledBack
)

// engineOptions collects the functional options of NewEngine and Connect.
type engineOptions struct {
	cfg cluster.EngineConfig
}

// Option configures an Engine.
type Option func(*engineOptions)

// WithThreshold sets the local exit's normalized-entropy threshold T
// (§III-D; default 0.8).
func WithThreshold(t float64) Option {
	return func(o *engineOptions) { o.cfg.Gateway.Threshold = t }
}

// WithDeviceTimeout bounds each device round trip; devices that miss it
// are treated as absent for the sample (graceful degradation, §IV-G).
func WithDeviceTimeout(d time.Duration) Option {
	return func(o *engineOptions) { o.cfg.Gateway.DeviceTimeout = d }
}

// WithCloudTimeout bounds the cloud round trip.
func WithCloudTimeout(d time.Duration) Option {
	return func(o *engineOptions) { o.cfg.Gateway.CloudTimeout = d }
}

// WithEdgeThreshold sets the edge exit's normalized-entropy threshold
// for models built with an edge tier (default 0.8). Samples that miss
// the local exit are answered at the edge when the edge exit's entropy
// is within this threshold; only the rest travel on to the cloud.
func WithEdgeThreshold(t float64) Option {
	return func(o *engineOptions) { o.cfg.Gateway.EdgeThreshold = t }
}

// WithEdgeTimeout bounds the gateway↔edge escalation round trip of an
// edge-tier hierarchy, including any cloud relay behind the edge.
func WithEdgeTimeout(d time.Duration) Option {
	return func(o *engineOptions) { o.cfg.Gateway.EdgeTimeout = d }
}

// WithMaxFailures marks a device down after n consecutive timeouts so
// later sessions skip it immediately; 0 disables sticky detection.
func WithMaxFailures(n int) Option {
	return func(o *engineOptions) { o.cfg.Gateway.MaxFailures = n }
}

// WithMaxConcurrency bounds the number of in-flight sessions; additional
// Classify calls queue (respecting their contexts). Default 16.
func WithMaxConcurrency(n int) Option {
	return func(o *engineOptions) { o.cfg.MaxConcurrency = n }
}

// WithCloudReplicas makes an in-process engine (NewEngine) start n cloud
// replicas instead of one. Escalations load-balance across the healthy
// replicas (power-of-two-choices on in-flight count) and fail over to
// another replica when one dies mid-session, so the cloud tier is no
// longer a single point of failure or the throughput ceiling. Connect
// ignores it — its upstream address list defines the replicas.
func WithCloudReplicas(n int) Option {
	return func(o *engineOptions) { o.cfg.CloudReplicas = n }
}

// WithEdgeReplicas makes an in-process engine (NewEngine) start n edge
// replicas for models built with an edge tier; each replica pools every
// cloud replica. Escalations load-balance and fail over exactly as with
// WithCloudReplicas. Connect ignores it — its upstream address list
// defines the replicas.
func WithEdgeReplicas(n int) Option {
	return func(o *engineOptions) { o.cfg.EdgeReplicas = n }
}

// WithWorkers bounds the intra-batch compute worker pool: when a
// coalesced micro-batch reaches a tier, its samples (and the
// output-channel blocks of large convolutions) split across up to n
// goroutines. The default is GOMAXPROCS. The bound is process-wide —
// every engine in the process shares the machine's cores — so the last
// configured engine wins.
func WithWorkers(n int) Option {
	return func(o *engineOptions) { o.cfg.Workers = n }
}

// WithBatching enables adaptive cross-session micro-batching: concurrent
// Classify calls coalesce into one multi-sample session per tier — one
// capture round trip per device, one batched escalation for the samples
// that miss the local exit — so wire framing and conv/GEMM dispatch
// amortize across up to maxBatch samples. A partial batch flushes after
// linger (<= 0 means the 2 ms default), which is the latency an isolated
// request can pay in exchange for load throughput; results are
// bit-identical to per-sample sessions. maxBatch <= 1 disables batching.
// ClassifyBatch chunks its IDs into maxBatch-sized sessions directly.
func WithBatching(maxBatch int, linger time.Duration) Option {
	return func(o *engineOptions) {
		o.cfg.Batch = cluster.BatchConfig{MaxBatch: maxBatch, MaxLinger: linger}
	}
}

// DefaultMaxBatch is a sensible micro-batch cap for WithBatching.
const DefaultMaxBatch = cluster.DefaultMaxBatch

// WithLogger routes node logs to l instead of slog.Default().
func WithLogger(l *slog.Logger) Option {
	return func(o *engineOptions) { o.cfg.Logger = l }
}

// WithSimulatedLinks imposes link profiles on the in-process cluster's
// connections: device uplinks get the device profile and the cloud path
// the cloud profile. Only NewEngine honors it; Connect runs over real
// sockets.
func WithSimulatedLinks(device, cloud LinkProfile) Option {
	return func(o *engineOptions) {
		o.cfg.DeviceLink = device
		o.cfg.CloudLink = cloud
	}
}

// WithSimulatedEdgeLink imposes a link profile on the gateway↔edge hop
// of an in-process edge-tier cluster (typically GatewayToEdgeLink),
// composing with WithSimulatedLinks. Only NewEngine honors it.
func WithSimulatedEdgeLink(edge LinkProfile) Option {
	return func(o *engineOptions) { o.cfg.EdgeLink = edge }
}

func buildOptions(opts []Option) engineOptions {
	o := engineOptions{cfg: cluster.EngineConfig{Gateway: cluster.DefaultGatewayConfig()}}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Engine is the serving entry point of the package: a DDNN cluster behind
// a context-aware, concurrency-bounded API. Every Classify call is an
// independent inference session — sessions are multiplexed over the
// device links, load-balanced across the upstream tier's replica pool,
// and proceed in parallel up to the configured concurrency limit. All
// methods are safe for concurrent use.
type Engine struct {
	inner *cluster.Engine
}

// NewEngine starts a complete in-process DDNN cluster — device nodes,
// gateway, the edge replicas for models built with UseEdge
// (WithEdgeReplicas) and the cloud replicas (WithCloudReplicas) over
// in-memory links — serving device sensors from the dataset, and returns
// the engine fronting it. Sample IDs are dataset indices.
func NewEngine(m *Model, ds *Dataset, opts ...Option) (*Engine, error) {
	o := buildOptions(opts)
	inner, err := cluster.NewEngine(m, ds, o.cfg, transport.NewMem())
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Connect attaches an engine to already-running nodes over TCP: the
// device nodes (cmd/ddnn-device) plus the replicas of the gateway's
// upstream tier — edge nodes (cmd/ddnn-edge) for models built with
// UseEdge, cloud nodes (cmd/ddnn-cloud) otherwise. deviceAddrs must be
// in device order; it may name fewer devices than the model has slots
// (or leave slots empty with "") — absent slots join later through
// AdmitDeviceAddr or the registration plane (ServeRegistration).
// upstreamAddrs lists the upstream tier's replicas, and
// sessions load-balance across them and fail over when one dies. The
// context bounds connection setup.
func Connect(ctx context.Context, m *Model, deviceAddrs []string, upstreamAddrs []string, opts ...Option) (*Engine, error) {
	o := buildOptions(opts)
	inner, err := cluster.AttachEngine(ctx, m, o.cfg, transport.TCP{}, deviceAddrs, upstreamAddrs)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Classify runs the staged inference of §III-D for one sample as an
// independent session. The context governs queueing, every device round
// trip and the cloud escalation; cancellation surfaces as ErrCanceled and
// an expired deadline as ErrDeadlineExceeded.
func (e *Engine) Classify(ctx context.Context, sampleID uint64) (Result, error) {
	res, err := e.inner.Classify(ctx, sampleID)
	if err != nil {
		return Result{}, err
	}
	return *res, nil
}

// ClassifyShed is Classify over the exit pipeline tightened for a shed
// level: under overload the caller trades answer quality (a cheaper
// exit) for availability instead of queueing. ShedNone behaves exactly
// like Classify. Requests at different shed levels never share a
// micro-batch.
func (e *Engine) ClassifyShed(ctx context.Context, sampleID uint64, level ShedLevel) (Result, error) {
	res, err := e.inner.ClassifyShed(ctx, sampleID, level)
	if err != nil {
		return Result{}, err
	}
	return *res, nil
}

// ClassifyTenantShed is ClassifyShed under a tenant's exit-threshold
// pipeline: the tenant's TenantConfig (see SetTenant) picks the
// thresholds, the shed level tightens them. Unknown tenants — and the
// empty tenant — run the engine's default pipeline, so tenancy is
// opt-in per client. Requests for different tenants never share a
// micro-batch.
func (e *Engine) ClassifyTenantShed(ctx context.Context, sampleID uint64, tenant string, level ShedLevel) (Result, error) {
	res, err := e.inner.ClassifyTenantShed(ctx, sampleID, tenant, level)
	if err != nil {
		return Result{}, err
	}
	return *res, nil
}

// ClassifyUpload classifies one caller-supplied sample instead of a
// dataset index: views holds one [1, ImageC, ImageH, ImageW] tensor per
// device of the model. The sample rides the normal staged session
// (micro-batching, shed level, replica failover included); the returned
// Result.SampleID is a transient upload ID. Only in-process engines
// (NewEngine) support uploads — Connect-ed engines return
// ErrUploadUnsupported because remote devices own their own sensors.
func (e *Engine) ClassifyUpload(ctx context.Context, views []*Tensor, level ShedLevel) (Result, error) {
	res, err := e.inner.ClassifyUpload(ctx, views, level)
	if err != nil {
		return Result{}, err
	}
	return *res, nil
}

// SetInstrumentation installs serving-observability callbacks on the
// engine's gateway: ExitObserved fires once per classified sample with
// its exit point and session latency, StageObserved once per tier round
// trip. Callbacks must be fast and safe for concurrent use; nil fields
// are skipped. Passing a zero Instrumentation removes the callbacks.
func (e *Engine) SetInstrumentation(in Instrumentation) {
	e.inner.Gateway().SetInstrumentation(in)
}

// ClassifyBatch classifies the samples concurrently — bounded by the
// engine's max concurrency — and returns results in input order. On the
// first session error the remaining sessions are canceled and only the
// error is returned (no partial results: a zero Result is
// indistinguishable from a real class-0 local exit).
func (e *Engine) ClassifyBatch(ctx context.Context, sampleIDs []uint64) ([]Result, error) {
	inner, err := e.inner.ClassifyBatch(ctx, sampleIDs)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(inner))
	for i, r := range inner {
		out[i] = *r
	}
	return out, nil
}

// ClassifyBatchShed is ClassifyBatch over the exit pipeline tightened
// for a shed level; see ClassifyShed.
func (e *Engine) ClassifyBatchShed(ctx context.Context, sampleIDs []uint64, level ShedLevel) ([]Result, error) {
	inner, err := e.inner.ClassifyBatchShed(ctx, sampleIDs, level)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(inner))
	for i, r := range inner {
		out[i] = *r
	}
	return out, nil
}

// ClassifyBatchTenantShed is ClassifyBatch under a tenant's
// exit-threshold pipeline tightened for a shed level; see
// ClassifyTenantShed.
func (e *Engine) ClassifyBatchTenantShed(ctx context.Context, sampleIDs []uint64, tenant string, level ShedLevel) ([]Result, error) {
	inner, err := e.inner.ClassifyBatchTenantShed(ctx, sampleIDs, tenant, level)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(inner))
	for i, r := range inner {
		out[i] = *r
	}
	return out, nil
}

// AdmitDevice (re-)admits the device in slot into the live topology by
// dialing the address the engine was built with, and returns the
// resulting topology config version. Sessions already in flight complete
// under the membership they observed; new sessions fan out to the
// admitted device.
func (e *Engine) AdmitDevice(ctx context.Context, slot int) (uint64, error) {
	return e.inner.AdmitDevice(ctx, slot)
}

// AdmitDeviceAddr admits a device at an explicit data-plane address into
// slot (a device that moved, or a slot constructed without an address),
// returning the resulting topology config version.
func (e *Engine) AdmitDeviceAddr(ctx context.Context, slot int, addr string) (uint64, error) {
	return e.inner.AdmitDeviceAddr(ctx, slot, addr)
}

// RemoveDevice deregisters the device in slot from the live topology and
// returns the resulting topology config version. In-flight sessions
// complete under the membership snapshot they observed; new sessions no
// longer fan out to the slot.
func (e *Engine) RemoveDevice(slot int) (uint64, error) {
	return e.inner.RemoveDevice(slot)
}

// SetTenant installs or updates a tenant's exit-threshold config and
// returns the resulting topology config version. Tenant traffic routes
// through ClassifyTenantShed / ClassifyBatchTenantShed (the HTTP front
// door maps the authenticated client identity to the tenant).
func (e *Engine) SetTenant(name string, tc TenantConfig) (uint64, error) {
	return e.inner.SetTenant(name, tc)
}

// RemoveTenant deletes a tenant's config — its traffic falls back to the
// engine's default pipeline — and returns the resulting topology config
// version.
func (e *Engine) RemoveTenant(name string) uint64 {
	return e.inner.RemoveTenant(name)
}

// ConfigVersion returns the current topology config version: 1 for a
// fresh engine, bumped on every membership or tenant mutation. Every
// Result carries the version its session ran under.
func (e *Engine) ConfigVersion() uint64 { return e.inner.ConfigVersion() }

// Topology returns a snapshot of the versioned runtime topology: the
// config version, total device slots, per-slot occupancy and the
// configured tenants.
func (e *Engine) Topology() TopologyConfig { return e.inner.Topology() }

// ServeRegistration starts the engine's device-registration plane on
// addr: a listener where device nodes announce themselves (join, leave,
// re-register) mid-run, without an engine restart. See
// cmd/ddnn-device's -register flag.
func (e *Engine) ServeRegistration(addr string) error {
	return e.inner.ServeRegistration(addr)
}

// RegisterModel registers an already-loaded model under an explicit
// nonzero version number in the engine's model registry. The
// architecture must match the serving fleet's (ErrModelConfigMismatch)
// and the version must be new (ErrDuplicateModelVersion). Registration
// alone changes nothing about serving — RolloutModel makes a version
// live.
func (e *Engine) RegisterModel(version uint64, m *Model) error {
	return e.inner.RegisterModel(version, m)
}

// RegisterModelBytes decodes a versioned model artifact (see
// SaveModelVersion) and registers it under its stamped version, which
// is returned. Corrupt artifacts fail with ErrCorruptModel before
// touching the registry.
func (e *Engine) RegisterModelBytes(data []byte) (uint64, error) {
	return e.inner.RegisterModelBytes(data)
}

// ModelVersion returns the fleet's active model version (1 for a fresh
// engine). Every Result carries the version its session was pinned to.
func (e *Engine) ModelVersion() uint64 { return e.inner.ModelVersion() }

// ModelVersions returns every version the engine's registry holds, in
// ascending order.
func (e *Engine) ModelVersions() []uint64 { return e.inner.ModelVersions() }

// RolloutState reports the model lifecycle state: RolloutIdle,
// RolloutRolling or RolloutRolledBack.
func (e *Engine) RolloutState() string { return e.inner.RolloutState() }

// RolloutModel performs a zero-downtime rolling reload of the in-process
// fleet onto a registered version: one upstream replica at a time is
// fenced out of scheduling, drained, flipped, and canaried against the
// staged reference (bit-identical outputs on a held-out batch) before
// traffic returns to it. Sessions in flight keep the version they
// pinned at session start. A failed canary rolls the entire fleet back
// to the prior version automatically and surfaces ErrRolloutFailed;
// concurrent rollouts fail fast with ErrRolloutInProgress. Keep at
// least two replicas per tier (WithEdgeReplicas/WithCloudReplicas) for
// true zero-downtime — with a single replica, escalations during its
// drain window fail over to no one and surface ErrNoHealthyReplica.
func (e *Engine) RolloutModel(ctx context.Context, version uint64) error {
	return e.inner.RolloutModel(ctx, version)
}

// PayloadBytes returns the accumulated Eq. (1) payload bytes across all
// sessions on the first hop (local summaries plus the device feature
// maps relayed up the hierarchy).
func (e *Engine) PayloadBytes() int64 { return e.inner.Gateway().Meter.Total() }

// EdgePayloadBytes returns the accumulated payload bytes on the
// edge→cloud hop — the bit-packed edge feature maps escalated for
// samples that missed both the local and the edge exit. It is 0 for
// two-tier models and engines attached to remote nodes.
func (e *Engine) EdgePayloadBytes() int64 {
	edge := e.inner.Edge()
	if edge == nil {
		return 0
	}
	return edge.Meter.Total()
}

// WireBytesUp returns the total bytes the gateway has received on all
// device uplinks (device→gateway direction), including protocol framing.
func (e *Engine) WireBytesUp() int64 { return e.inner.Gateway().WireBytesUp() }

// WireBytesDown returns the total bytes the gateway has written to all
// device links (gateway→device direction: capture and feature requests),
// including protocol framing.
func (e *Engine) WireBytesDown() int64 { return e.inner.Gateway().WireBytesDown() }

// DownDevices returns the devices currently marked down by failure
// detection.
func (e *Engine) DownDevices() []int { return e.inner.Gateway().DownDevices() }

// SetDeviceFailed toggles simulated failure of one in-process device node
// (no-op reporting false when the engine is connected to remote nodes).
// Crashed devices go silent; the gateway degrades gracefully (§IV-G).
func (e *Engine) SetDeviceFailed(device int, failed bool) bool {
	devs := e.inner.Devices()
	if device < 0 || device >= len(devs) {
		return false
	}
	devs[device].SetFailed(failed)
	return true
}

// SetEdgeFailed toggles simulated failure of one in-process edge replica
// (no-op reporting false for two-tier models, attached engines, or an
// out-of-range replica index). A crashed edge goes silent; the gateway's
// replica pool fails sessions over to the remaining edge replicas, and
// escalations surface ErrEdgeUnavailable only once every replica is
// down — confident samples keep exiting locally throughout.
func (e *Engine) SetEdgeFailed(replica int, failed bool) bool {
	edges := e.inner.Edges()
	if replica < 0 || replica >= len(edges) {
		return false
	}
	edges[replica].SetFailed(failed)
	return true
}

// SetCloudFailed toggles simulated failure of one in-process cloud
// replica (no-op reporting false for attached engines or an out-of-range
// replica index). A crashed cloud replica goes silent; the downstream
// tier's replica pool fences it and fails in-flight escalations over to
// the remaining replicas, re-sending the full feature frames so every
// sample still gets its deterministic answer.
func (e *Engine) SetCloudFailed(replica int, failed bool) bool {
	clouds := e.inner.Clouds()
	if replica < 0 || replica >= len(clouds) {
		return false
	}
	clouds[replica].SetFailed(failed)
	return true
}

// UpstreamReplicas returns the number of replicas in the gateway's
// upstream tier (edge for edge-tier models, cloud otherwise) and how
// many of them are currently healthy.
func (e *Engine) UpstreamReplicas() (total, healthy int) {
	pool := e.inner.Gateway().Upstream()
	return pool.Size(), pool.Healthy()
}

// StartHealthMonitor begins heartbeat probing of the engine's devices
// and every upstream replica: a node missing `misses` consecutive probes
// is marked down (sessions skip the device, or the replica pool stops
// scheduling the replica) and marked up again on its first answer. Stop
// the returned monitor when done.
func (e *Engine) StartHealthMonitor(ctx context.Context, interval time.Duration, misses int) (*HealthMonitor, error) {
	return e.inner.StartHealthMonitor(ctx, interval, misses)
}

// HealthMonitor drives automatic device up/down detection; see
// Engine.StartHealthMonitor.
type HealthMonitor = cluster.HealthMonitor

// Close drains in-flight sessions and tears the engine down.
func (e *Engine) Close() error { return e.inner.Close() }
