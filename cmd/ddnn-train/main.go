// Command ddnn-train jointly trains a DDNN on the synthetic multi-view
// multi-camera dataset and saves the model to a file, ready to be deployed
// with ddnn-device / ddnn-cloud / ddnn-gateway.
//
// Usage:
//
//	ddnn-train -out model.ddnn [-epochs 100] [-filters 4] [-cloud-filters 16]
//	           [-local MP] [-cloud-agg CC] [-edge] [-seed 1] [-data-seed 1]
//	           [-model-version 1]
//
// The model is written atomically (temp file, fsync, rename), so a
// crash mid-save never leaves a truncated artifact where a serving
// fleet's reload could pick it up. -model-version stamps the artifact
// with the version number the serving admin plane registers it under
// (see docs/OPERATIONS.md on rolling reloads).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/agg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-train:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-train", flag.ContinueOnError)
	var (
		out          = fs.String("out", "model.ddnn", "output model file")
		epochs       = fs.Int("epochs", 100, "training epochs (paper: 100)")
		batch        = fs.Int("batch", 32, "batch size")
		filters      = fs.Int("filters", 4, "device ConvP filters f")
		cloudFilters = fs.Int("cloud-filters", 16, "cloud ConvP filters")
		localAgg     = fs.String("local", "MP", "local aggregation scheme: MP, AP or CC")
		cloudAgg     = fs.String("cloud-agg", "CC", "cloud aggregation scheme: MP, AP or CC")
		useEdge      = fs.Bool("edge", false, "insert an edge tier (adds an edge exit)")
		seed         = fs.Int64("seed", 1, "weight initialization seed")
		dataSeed     = fs.Int64("data-seed", 1, "dataset generation seed")
		modelVersion = fs.Uint64("model-version", 1, "model version stamped into the artifact (for rolling reloads)")
		quiet        = fs.Bool("q", false, "suppress per-epoch progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	la, err := agg.ParseScheme(*localAgg)
	if err != nil {
		return err
	}
	ca, err := agg.ParseScheme(*cloudAgg)
	if err != nil {
		return err
	}

	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Seed = *dataSeed
	train, test := ddnn.GenerateDataset(dcfg)

	cfg := ddnn.DefaultConfig()
	cfg.DeviceFilters = *filters
	cfg.CloudFilters = *cloudFilters
	cfg.LocalAgg, cfg.CloudAgg = la, ca
	cfg.UseEdge = *useEdge
	cfg.Seed = *seed
	model, err := ddnn.NewModel(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("model: %d params, %d B per device; training %d epochs on %d samples\n",
		model.ParamCount(), model.DeviceMemoryBytes(), *epochs, train.Len())

	tc := ddnn.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.BatchSize = *batch
	if !*quiet {
		tc.Progress = func(epoch int, loss float64) {
			fmt.Printf("epoch %3d/%d: loss %.4f\n", epoch+1, *epochs, loss)
		}
	}
	start := time.Now()
	if _, err := model.Train(train, tc); err != nil {
		return err
	}
	fmt.Printf("trained in %v\n", time.Since(start).Round(time.Second))

	res := model.Evaluate(test, nil, *batch)
	pol := ddnn.NewPolicy(0.8, 1)
	fmt.Printf("test: local %.1f%%  cloud %.1f%%  overall@0.8 %.1f%% (%.1f%% local exits)\n",
		res.LocalAccuracy()*100, res.CloudAccuracy()*100,
		res.OverallAccuracy(pol)*100, res.LocalExitFraction(pol)*100)

	if *modelVersion == 0 {
		return fmt.Errorf("-model-version must be nonzero")
	}
	if err := ddnn.SaveModelVersion(*out, model, *modelVersion); err != nil {
		return err
	}
	fmt.Printf("saved %s (version %d)\n", *out, *modelVersion)
	return nil
}
