package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"github.com/ddnn/ddnn-go/internal/bnn"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/tensor"
)

// kernelResult is one benchmark row of the kernels experiment.
type kernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// kernelComparison pairs a reference kernel with its optimized
// replacement; the CI smoke fails when the measured speedup falls below
// the comparison's floor. Kernel rewrites must beat their reference
// outright (floor 1.0); the pooled serving forwards run the same
// compute as their unpooled twins and only shed allocations, so they
// get a small tolerance (pooledFloor) for run-to-run scheduler noise —
// BENCH_pr4.json recorded a 40% pooled-cloud "regression" that five
// repeated runs could not reproduce (see ROADMAP item 4).
type kernelComparison struct {
	Label      string  `json:"label"`
	Naive      string  `json:"naive"`
	Optimized  string  `json:"optimized"`
	Speedup    float64 `json:"speedup"`
	MinSpeedup float64 `json:"min_speedup"`
}

// pooledFloor is the speedup floor for pooled-vs-unpooled comparisons:
// equal-compute paths are allowed 5% measurement noise.
const pooledFloor = 0.95

// kernelReport is what -json serializes (BENCH_pr10.json in CI).
type kernelReport struct {
	Results     []kernelResult     `json:"results"`
	Comparisons []kernelComparison `json:"comparisons"`
}

// sizeTag maps a dispatch-matrix kernel to the shape suffix in its row
// names, so the comparison entries reference the exact result rows.
func sizeTag(kernel string) string {
	switch kernel {
	case "gemm", "gemm_sign":
		return "32x256x64"
	case "xnor_dot":
		return "1024"
	default:
		return "4096"
	}
}

func benchNs(f func(b *testing.B)) kernelResult {
	r := testing.Benchmark(f)
	return kernelResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchNsBest measures f several times and keeps the fastest run.
// Gated comparisons use this: the minimum is robust against one-off
// frequency dips and scheduler migrations that a single 1-second run
// on shared CI hardware can absorb entirely.
func benchNsBest(f func(b *testing.B)) kernelResult {
	best := benchNs(f)
	for i := 1; i < 3; i++ {
		if r := benchNs(f); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}

// runKernels benchmarks the rewritten compute core against the retained
// reference kernels and the per-tier section forwards, writes the table
// to out and, when jsonPath is non-empty, the JSON report. It returns an
// error when an optimized kernel measures slower than its naive
// reference, which is the CI regression gate.
func runKernels(out io.Writer, jsonPath string) error {
	// Pin the worker pool to one goroutine: the naive references are
	// serial, so the comparisons must measure kernel quality, not the
	// host's core count.
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(0)
	prevPath := tensor.CurrentKernelPath()
	defer tensor.SetKernelPath(prevPath)
	rng := rand.New(rand.NewSource(1))
	report := kernelReport{}
	record := func(name string, r kernelResult) kernelResult {
		r.Name = name
		report.Results = append(report.Results, r)
		fmt.Fprintf(out, "%-28s %12.0f ns/op %8d B/op %6d allocs/op\n", name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		return r
	}
	add := func(name string, f func(b *testing.B)) kernelResult {
		return record(name, benchNs(f))
	}
	addBest := func(name string, f func(b *testing.B)) kernelResult {
		return record(name, benchNsBest(f))
	}

	// GEMM: naive ikj reference vs register-tiled kernel. The historical
	// rows keep their meaning under the dispatch layer: MatMul and
	// XnorDot are pinned to the portable go path here, and the per-path
	// matrix below covers naive and simd.
	if err := tensor.SetKernelPathName("go"); err != nil {
		return err
	}
	x := tensor.New(32, 256)
	w := tensor.New(256, 64)
	x.FillUniform(rng, -1, 1)
	w.FillUniform(rng, -1, 1)
	naiveMM := addBest("matmul_naive_32x256x64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMulNaive(x, w)
		}
	})
	blockedMM := addBest("matmul_blocked_32x256x64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMul(x, w)
		}
	})

	// XNOR dot: byte-wide reference vs 64-bit word kernel.
	av := make([]float32, 1024)
	bv := make([]float32, 1024)
	for i := range av {
		av[i] = float32(rng.Intn(2)*2 - 1)
		bv[i] = float32(rng.Intn(2)*2 - 1)
	}
	pa, pb := bnn.PackVector(av), bnn.PackVector(bv)
	ab, bb := pa.Bytes(), pb.Bytes()
	byteDot := addBest("xnor_dot_byte_1024", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bnn.XnorDotBytes(1024, ab, bb); err != nil {
				b.Fatal(err)
			}
		}
	})
	wordDot := addBest("xnor_dot_word_1024", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bnn.XnorDot(pa, pb); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Dispatch-path matrix: the same four kernels once per forced path
	// (naive | go | simd where supported), so the report shows exactly
	// what each path buys and CI can gate go ≥ naive and simd ≥ go.
	ga := make([]float32, 32*256)
	gb := make([]float32, 256*64)
	gc := make([]float32, 32*64)
	sa := make([]float32, 32*256)
	for i := range ga {
		ga[i] = rng.Float32()*2 - 1
		sa[i] = float32(rng.Intn(2)*2 - 1)
	}
	for i := range gb {
		gb[i] = rng.Float32()*2 - 1
	}
	packSrc := make([]float32, 4096)
	for i := range packSrc {
		packSrc[i] = rng.Float32()*2 - 1
	}
	pathRows := map[string]kernelResult{}
	for _, path := range tensor.KernelPaths() {
		if err := tensor.SetKernelPath(path); err != nil {
			return err
		}
		tag := "[" + path.String() + "]"
		pathRows["gemm"+tag] = addBest("gemm_32x256x64"+tag, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.Gemm(gc, ga, gb, 32, 256, 64)
			}
		})
		pathRows["gemm_sign"+tag] = addBest("gemm_sign_32x256x64"+tag, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.GemmSign(gc, sa, gb, 32, 256, 64)
			}
		})
		pathRows["xnor_dot"+tag] = addBest("xnor_dot_1024"+tag, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bnn.XnorDot(pa, pb); err != nil {
					b.Fatal(err)
				}
			}
		})
		pathRows["pack_signs"+tag] = addBest("pack_signs_4096"+tag, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bnn.PackVector(packSrc)
			}
		})
	}
	if err := tensor.SetKernelPath(prevPath); err != nil {
		return err
	}

	// Per-tier section forwards on the paper's architecture, plus the
	// pooled serving path.
	m := core.MustNewModel(core.DefaultConfig())
	frame := tensor.New(1, 3, 32, 32)
	frame.FillUniform(rng, 0, 1)
	devFwd := add("device_forward", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.DeviceForward(0, frame)
		}
	})
	devFwdPooled := add("device_forward_pooled", func(b *testing.B) {
		b.ReportAllocs()
		pool := tensor.NewPool()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			feat, exitVec := m.DeviceForwardPooled(0, frame, pool)
			pool.Put(exitVec)
			pool.Put(feat)
		}
	})
	feats := make([]*tensor.Tensor, m.Cfg.Devices)
	for d := range feats {
		feats[d] = tensor.New(1, m.Cfg.DeviceFilters, m.Cfg.FeatureH(), m.Cfg.FeatureW())
		feats[d].FillUniform(rng, -1, 1)
	}
	cloudFwd := add("cloud_forward", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.CloudForward(feats, nil)
		}
	})
	cloudFwdPooled := add("cloud_forward_pooled", func(b *testing.B) {
		b.ReportAllocs()
		pool := tensor.NewPool()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Put(m.CloudForwardPooled(feats, nil, pool))
		}
	})

	report.Comparisons = []kernelComparison{
		{Label: "blocked GEMM vs naive", Naive: "matmul_naive_32x256x64", Optimized: "matmul_blocked_32x256x64", Speedup: naiveMM.NsPerOp / blockedMM.NsPerOp, MinSpeedup: 1},
		{Label: "word-wide XNOR vs byte", Naive: "xnor_dot_byte_1024", Optimized: "xnor_dot_word_1024", Speedup: byteDot.NsPerOp / wordDot.NsPerOp, MinSpeedup: 1},
		{Label: "pooled device forward", Naive: "device_forward", Optimized: "device_forward_pooled", Speedup: devFwd.NsPerOp / devFwdPooled.NsPerOp, MinSpeedup: pooledFloor},
		{Label: "pooled cloud forward", Naive: "cloud_forward", Optimized: "cloud_forward_pooled", Speedup: cloudFwd.NsPerOp / cloudFwdPooled.NsPerOp, MinSpeedup: pooledFloor},
	}
	// Chain gates over the dispatch-path matrix: each step up the path
	// ladder must not lose more than the 5% noise floor, for each kernel.
	// (On AVX2 hosts the simd steps measure well above 1x; the floor only
	// absorbs scheduler noise, not regressions.)
	pathNames := tensor.KernelPaths()
	for _, kernel := range []string{"gemm", "gemm_sign", "xnor_dot", "pack_signs"} {
		for i := 1; i < len(pathNames); i++ {
			lo, hi := "["+pathNames[i-1].String()+"]", "["+pathNames[i].String()+"]"
			base, step := pathRows[kernel+lo], pathRows[kernel+hi]
			report.Comparisons = append(report.Comparisons, kernelComparison{
				Label:      kernel + " " + pathNames[i].String() + " vs " + pathNames[i-1].String(),
				Naive:      kernel + "_" + sizeTag(kernel) + lo,
				Optimized:  kernel + "_" + sizeTag(kernel) + hi,
				Speedup:    base.NsPerOp / step.NsPerOp,
				MinSpeedup: pooledFloor,
			})
		}
	}
	fmt.Fprintln(out)
	var slow []string
	for _, cmp := range report.Comparisons {
		fmt.Fprintf(out, "%-28s %5.2fx (floor %.2fx)\n", cmp.Label, cmp.Speedup, cmp.MinSpeedup)
		if cmp.Speedup < cmp.MinSpeedup {
			slow = append(slow, cmp.Label)
		}
	}
	fmt.Fprintln(out)

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n\n", jsonPath)
	}
	if len(slow) > 0 {
		return fmt.Errorf("optimized kernels slower than naive reference: %v", slow)
	}
	return nil
}
