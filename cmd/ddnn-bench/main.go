// Command ddnn-bench regenerates the tables and figures of the DDNN
// paper's evaluation (§IV) on the synthetic multi-view multi-camera
// dataset. Each experiment prints the same rows/series the paper reports.
//
// Usage:
//
//	ddnn-bench [-exp all|table1|table2|fig6|fig7|fig8|fig9|fig10|comm|multifail]
//	           [-epochs N] [-individual-epochs N] [-quick] [-batch N]
//	           [-replicas 1,2,4] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/cliutil"
	"github.com/ddnn/ddnn-go/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ddnn-bench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment: all, table1, table2, fig6, fig7, fig8, fig9, fig10, comm, multifail, mixed, edge, latency, serve, replicas, kernels")
		epochs    = fs.Int("epochs", 0, "override DDNN training epochs (default 50, paper uses 100)")
		indEpochs = fs.Int("individual-epochs", 0, "override individual-model training epochs")
		quick     = fs.Bool("quick", false, "reduced dataset and epochs for a fast smoke run")
		batch     = fs.Int("batch", 32, "micro-batch size for the serve experiment (compared against batch 1)")
		replicaLv = fs.String("replicas", "1,2,4", "comma-separated cloud replica counts for the replica scale-out sweep")
		jsonOut   = fs.String("json", "", "write the kernels experiment's results to this JSON file (e.g. BENCH_pr4.json)")
		verbose   = fs.Bool("v", false, "log training progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *epochs > 0 {
		opts.Epochs = *epochs
	}
	if *indEpochs > 0 {
		opts.IndividualEpochs = *indEpochs
	}
	if *verbose {
		opts.Verbose = os.Stderr
	}

	wanted := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, w := range wanted {
			if w == "all" || w == name {
				return true
			}
		}
		return false
	}

	start := time.Now()

	// The kernels experiment needs no dataset or training; run it first
	// so `-exp kernels` stays a seconds-long smoke (the CI regression
	// gate for the rewritten compute core).
	if want("kernels") {
		fmt.Fprintln(out, "== Compute kernels: naive vs optimized (per-sample, 1 worker) ==")
		if err := runKernels(out, *jsonOut); err != nil {
			return err
		}
	}
	onlyKernels := true
	for _, w := range wanted {
		if w != "kernels" {
			onlyKernels = false
		}
	}
	if onlyKernels {
		fmt.Fprintf(out, "total wall clock: %v\n", time.Since(start).Round(time.Second))
		return nil
	}

	runner, err := experiments.NewRunner(opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "DDNN evaluation harness (epochs=%d, individual=%d, train=%d, test=%d)\n\n",
		opts.Epochs, opts.IndividualEpochs, opts.Data.Train, opts.Data.Test)

	if want("fig6") {
		fmt.Fprintln(out, "== Fig. 6: per-device class distribution ==")
		fmt.Fprintln(out, experiments.FormatClassDistribution(runner.ClassDistribution()))
	}
	if want("table1") {
		fmt.Fprintln(out, "== Table I: aggregation schemes ==")
		rows, err := runner.TableI()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatTableI(rows))
	}
	if want("table2") {
		fmt.Fprintln(out, "== Table II: exit-threshold settings ==")
		rows, err := runner.ThresholdSweep([]float64{0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatTableII(rows))
		best := experiments.BestThreshold(rows)
		fmt.Fprintf(out, "best threshold: T=%.1f (overall %.1f%%, %.1f%% local exits, %.0f B)\n\n",
			best.T, best.OverallAcc, best.LocalExitPct, best.CommBytes)
	}
	if want("fig7") {
		fmt.Fprintln(out, "== Fig. 7: overall accuracy vs exit threshold (dense sweep) ==")
		rows, err := runner.ThresholdSweep(branchy.Grid(20))
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatTableII(rows))
	}
	if want("fig8") {
		fmt.Fprintln(out, "== Fig. 8: scaling across end devices (worst→best) ==")
		points, err := runner.DeviceScaling()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatScaling(points))
	}
	if want("fig9") {
		fmt.Fprintln(out, "== Fig. 9: cloud offloading vs device model size ==")
		points, err := runner.CloudOffloading([]int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatOffloading(points))
	}
	if want("fig10") {
		fmt.Fprintln(out, "== Fig. 10: fault tolerance (single device failure) ==")
		points, err := runner.FaultTolerance()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatFaultTolerance(points))
	}
	if want("multifail") {
		fmt.Fprintln(out, "== Extension: multiple simultaneous failures (best devices first) ==")
		points, err := runner.MultiFailure(4)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Failures  Local  Cloud  Overall (%)")
		for _, p := range points {
			fmt.Fprintf(out, "%8d %6.1f %6.1f %8.1f\n", p.FailedDevice, p.Local*100, p.Cloud*100, p.Overall*100)
		}
		fmt.Fprintln(out)
	}
	if want("mixed") {
		fmt.Fprintln(out, "== Extension (§VI): mixed-precision cloud ablation ==")
		rows, err := runner.MixedPrecisionAblation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatAblation(rows))
	}
	if want("edge") {
		fmt.Fprintln(out, "== Extension: device-edge-cloud hierarchy (Fig. 2(e)) ==")
		row, err := runner.EdgeHierarchy()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatEdgeHierarchy(row))
	}
	if want("latency") {
		fmt.Fprintln(out, "== §V: response latency by exit point (simulated links) ==")
		rep, err := runner.LatencyByExit(0.8, 0)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatLatencyReport(rep))
		fmt.Fprintln(out, "== §V extension: three-stage latency over the edge tier ==")
		erep, err := runner.EdgeLatencyByExit(0.8, 0.8, 0)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatLatencyReport(erep))
	}
	if want("serve") {
		batches := []int{1}
		if *batch > 1 {
			batches = append(batches, *batch)
		}
		fmt.Fprintln(out, "== Engine: multi-session serving throughput vs single-flight ==")
		rep, err := runner.ServingThroughput(0.8, 0, []int{1, 2, 4, 8, 16}, batches)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatServingReport(rep))
		fmt.Fprintln(out, "== Engine: three-stage device→edge→cloud serving (Fig. 2(e)) ==")
		erep, err := runner.EdgeServingThroughput(0.8, 0.8, 0, []int{1, 2, 4, 8, 16}, batches)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatServingReport(erep))
	}
	if want("serve") || want("replicas") {
		counts, err := cliutil.ParseInts(*replicaLv, 1)
		if err != nil {
			return fmt.Errorf("bad -replicas: %w", err)
		}
		fmt.Fprintln(out, "== Scale-out: cloud replica pool throughput + kill-a-replica failover ==")
		rrep, err := runner.ReplicaScaling(counts, 0, 16, *batch)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatReplicaReport(rrep))
	}
	if want("comm") {
		fmt.Fprintln(out, "== §IV-H: communication cost vs raw offloading (measured on cluster) ==")
		rep, err := runner.CommunicationReduction(-1, 0)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatCommReport(rep))
	}

	fmt.Fprintf(out, "total wall clock: %v\n", time.Since(start).Round(time.Second))
	return nil
}
