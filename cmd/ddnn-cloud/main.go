// Command ddnn-cloud runs the cloud node: it loads a trained model and
// serves cloud-exit classification sessions — aggregating uploaded
// binarized feature maps and running the upper NN layers — for a gateway.
//
// Usage:
//
//	ddnn-cloud -model model.ddnn -listen 127.0.0.1:7100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-cloud:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-cloud", flag.ContinueOnError)
	var (
		modelPath    = fs.String("model", "model.ddnn", "trained model file")
		listen       = fs.String("listen", "127.0.0.1:7100", "listen address")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight classifications")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := ddnn.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	node := cluster.NewCloud(model, nil)
	if err := node.Serve(transport.TCP{}, *listen); err != nil {
		return err
	}
	fmt.Printf("cloud serving on %s (%d devices expected, %v aggregation)\n",
		node.Addr(), model.Cfg.Devices, model.Cfg.CloudAgg)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Drain instead of closing abruptly: stop accepting, let in-flight
	// classifications answer, then tear down. A drain-deadline overrun
	// is reported but not an error — the process still exits cleanly.
	fmt.Printf("shutting down (draining up to %v)\n", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := node.Drain(ctx); err != nil {
		fmt.Println("drain deadline exceeded; closed with sessions in flight")
	}
	return nil
}
