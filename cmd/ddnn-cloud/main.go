// Command ddnn-cloud runs the cloud node: it loads a trained model and
// serves cloud-exit classification sessions — aggregating uploaded
// binarized feature maps and running the upper NN layers — for a gateway.
//
// Usage:
//
//	ddnn-cloud -model model.ddnn -listen 127.0.0.1:7100
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-cloud:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-cloud", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "model.ddnn", "trained model file")
		listen    = fs.String("listen", "127.0.0.1:7100", "listen address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := ddnn.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	node := cluster.NewCloud(model, nil)
	if err := node.Serve(transport.TCP{}, *listen); err != nil {
		return err
	}
	fmt.Printf("cloud serving on %s (%d devices expected, %v aggregation)\n",
		node.Addr(), model.Cfg.Devices, model.Cfg.CloudAgg)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return node.Close()
}
