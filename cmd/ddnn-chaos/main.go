// Command ddnn-chaos runs the seeded chaos harness (internal/chaos)
// over a freshly trained in-process DDNN topology and prints the
// availability curve and invariant verdict. It is the replay surface
// for chaos findings: a failing CI run or test prints a seed, and
// `ddnn-chaos -seed N` reproduces that run's fault schedule.
//
// Usage:
//
//	ddnn-chaos [-seed 1] [-duration 3s] [-edge] [-replicas 2]
//	           [-workers 4] [-epochs 3] [-device-kills] [-replica-kills]
//	           [-link-faults] [-health-flaps] [-frame-corruption]
//	           [-device-churn] [-model-rollouts] [-soak 1m]
//
// -seed 0 draws a fresh random seed (printed for replay). The process
// exits 1 if the run observed any invariant violation.
//
// -soak runs a long window (overriding -duration) and emits the run as
// machine-readable JSON on stdout — the per-500ms availability buckets,
// fault census and verdict — for trend dashboards and soak pipelines;
// the human-readable curve moves to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"github.com/ddnn/ddnn-go/internal/chaos"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-chaos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-chaos", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "chaos schedule seed (0: draw a random one)")
		duration   = fs.Duration("duration", 3*time.Second, "fault window before heal/drain phases")
		useEdge    = fs.Bool("edge", true, "run the three-tier hierarchy (false: device→cloud)")
		replicas   = fs.Int("replicas", 2, "replicas per upper tier")
		workers    = fs.Int("workers", 4, "concurrent traffic drivers")
		inflight   = fs.Int("max-inflight", 8, "front-door admission bound")
		epochs     = fs.Int("epochs", 3, "training epochs for the throwaway model")
		dataSeed   = fs.Int64("data-seed", 1, "dataset seed")
		devKills   = fs.Bool("device-kills", true, "arm the device killer")
		repKills   = fs.Bool("replica-kills", true, "arm the replica killer/restarter")
		linkFaults = fs.Bool("link-faults", true, "arm link partitions and degradation")
		flaps      = fs.Bool("health-flaps", true, "arm health-monitor flapping")
		corruption = fs.Bool("frame-corruption", true, "arm wire-frame corruption")
		churn      = fs.Bool("device-churn", true, "arm membership churn (device leave/join cycles)")
		rollouts   = fs.Bool("model-rollouts", true, "arm the model lifecycle actor (registrations, rollouts, forced rollbacks)")
		soak       = fs.Duration("soak", 0, "soak mode: run this long (overrides -duration) and print the per-bucket availability report as JSON on stdout")
		verbose    = fs.Bool("v", false, "log cluster node output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))

	dcfg := dataset.DefaultConfig()
	dcfg.Train, dcfg.Test = 120, 40
	dcfg.Seed = *dataSeed
	train, test := dataset.MustGenerate(dcfg)
	mcfg := core.DefaultConfig()
	mcfg.UseEdge = *useEdge
	mcfg.CloudFilters = 8
	model := core.MustNewModel(mcfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	logger.Info("training throwaway model", "epochs", *epochs, "edge", *useEdge)
	if _, err := model.Train(train, tc); err != nil {
		return err
	}

	window := *duration
	if *soak > 0 {
		window = *soak
	}
	cfg := chaos.Config{
		Seed:            *seed,
		FaultWindow:     window,
		EdgeReplicas:    *replicas,
		CloudReplicas:   *replicas,
		Workers:         *workers,
		MaxInFlight:     *inflight,
		DeviceKills:     *devKills,
		ReplicaKills:    *repKills,
		LinkFaults:      *linkFaults,
		HealthFlaps:     *flaps,
		FrameCorruption: *corruption,
		DeviceChurn:     *churn,
		ModelRollout:    *rollouts,
	}
	if *verbose {
		cfg.Logger = logger
	}
	h, err := chaos.New(model, test, cfg)
	if err != nil {
		return err
	}
	logger.Info("chaos run starting", "seed", *seed, "window", window)
	rep, err := h.Run(context.Background())
	if rep != nil {
		if *soak > 0 {
			// Soak mode keeps stdout machine-readable; the curve goes to
			// stderr for anyone watching.
			fmt.Fprint(os.Stderr, rep)
			out, jerr := rep.JSON()
			if jerr != nil {
				return jerr
			}
			fmt.Println(string(out))
		} else {
			fmt.Print(rep)
		}
	}
	if err != nil {
		return err
	}
	if v := rep.Violations(); len(v) > 0 {
		return fmt.Errorf("%d invariant violations (seed %d)", len(v), *seed)
	}
	return nil
}
