// Command ddnn-gateway runs the local aggregator: it connects an Engine
// to the device nodes and the upstream tier over TCP — the edge replicas
// for edge-tier models, the cloud replicas otherwise — drives concurrent
// classification sessions over the test set, and reports accuracy, exit
// distribution, latency, throughput and measured communication.
//
// Usage:
//
//	ddnn-gateway -model model.ddnn -devices 127.0.0.1:7001,...,127.0.0.1:7006 \
//	             -cloud 127.0.0.1:7100 [-cloud 127.0.0.1:7101 ...]
//	             [-edge 127.0.0.1:7050 [-edge 127.0.0.1:7051 ...]]
//	             [-threshold 0.8] [-edge-threshold 0.8] [-concurrency 8]
//	             [-batch 1] [-samples 0] [-data-seed 1]
//	             [-register 127.0.0.1:7200] [-wait-devices 30s]
//
// With -register the gateway serves the device registration plane on
// that address: -devices may then name fewer devices than the model has
// slots (or leave entries empty), and the missing devices join at
// runtime via ddnn-device -register without a gateway restart.
// -wait-devices holds the classification batch until every slot fills
// or the window expires.
//
// With a model trained via ddnn-train -edge, pass -edge so the gateway
// escalates local-exit misses to the edge tier (which forwards hard
// samples to the cloud itself); otherwise the gateway dials -cloud.
// Both flags are repeatable (and accept comma-separated lists): every
// address names one replica of that tier, and the gateway load-balances
// escalations across the healthy replicas, failing over mid-session when
// one dies.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cliutil"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-gateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-gateway", flag.ContinueOnError)
	var cloudAddrs, edgeAddrs cliutil.AddrList
	fs.Var(&cloudAddrs, "cloud", "cloud replica address (repeatable; default 127.0.0.1:7100)")
	fs.Var(&edgeAddrs, "edge", "edge replica address (repeatable; required for edge-tier models)")
	var (
		modelPath   = fs.String("model", "model.ddnn", "trained model file")
		devices     = fs.String("devices", "", "comma-separated device addresses, in device order; fewer entries than the model has slots (or empty entries) leave those slots absent until a device registers")
		register    = fs.String("register", "", "serve the device registration plane on this address: devices join/leave at runtime via ddnn-device -register")
		waitDevices = fs.Duration("wait-devices", 0, "with -register, wait up to this long for every slot to fill before classifying")
		threshold   = fs.Float64("threshold", 0.8, "local exit entropy threshold T")
		edgeT       = fs.Float64("edge-threshold", 0.8, "edge exit entropy threshold (edge-tier models)")
		concurrency = fs.Int("concurrency", 8, "concurrent classification sessions")
		batch       = fs.Int("batch", 1, "micro-batch size: coalesce up to this many samples into one session per tier (1 = per-sample)")
		samples     = fs.Int("samples", 0, "number of test samples to classify (0 = all)")
		dataSeed    = fs.Int64("data-seed", 1, "dataset seed (must match the devices)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be at least 1, got %d", *concurrency)
	}

	model, err := ddnn.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	if len(cloudAddrs) == 0 {
		cloudAddrs = cliutil.AddrList{"127.0.0.1:7100"}
	}
	upstream := []string(cloudAddrs)
	if model.Cfg.UseEdge {
		if len(edgeAddrs) == 0 {
			return fmt.Errorf("model has an edge tier; pass -edge with the ddnn-edge address(es)")
		}
		upstream = edgeAddrs
	} else if len(edgeAddrs) > 0 {
		return fmt.Errorf("model has no edge tier; drop -edge or retrain with ddnn-train -edge")
	}
	var addrs []string
	if *devices != "" {
		addrs = strings.Split(*devices, ",")
	}
	if len(addrs) > model.Cfg.Devices {
		return fmt.Errorf("model has %d device slots, got %d addresses: %w", model.Cfg.Devices, len(addrs), ddnn.ErrDeviceSlotMismatch)
	}
	if len(addrs) < model.Cfg.Devices && *register == "" {
		return fmt.Errorf("model needs %d device addresses, got %d (pass -register to let the missing devices join at runtime)", model.Cfg.Devices, len(addrs))
	}
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Seed = *dataSeed
	_, test := ddnn.GenerateDataset(dcfg)

	// SIGINT/SIGTERM cancel the run: in-flight sessions drain through
	// Engine.Close (deferred below) and the process exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	dialCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	eng, err := ddnn.Connect(dialCtx, model, addrs, upstream,
		ddnn.WithThreshold(*threshold),
		ddnn.WithEdgeThreshold(*edgeT),
		ddnn.WithMaxConcurrency(*concurrency),
		ddnn.WithBatching(*batch, 0))
	cancel()
	if err != nil {
		return err
	}
	defer eng.Close()

	if *register != "" {
		if err := eng.ServeRegistration(*register); err != nil {
			return err
		}
		fmt.Printf("registration plane on %s (topology version %d)\n", *register, eng.ConfigVersion())
		if *waitDevices > 0 {
			if err := waitForMembers(ctx, eng, *waitDevices); err != nil {
				return err
			}
		}
	}

	n := test.Len()
	if *samples > 0 && *samples < n {
		n = *samples
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	labels := test.Labels(nil)
	start := time.Now()
	results, err := eng.ClassifyBatch(ctx, ids)
	if err != nil {
		if errors.Is(err, ddnn.ErrCanceled) && ctx.Err() != nil {
			fmt.Println("interrupted; drained in-flight sessions")
			return nil
		}
		return err
	}
	elapsed := time.Since(start)

	correct := 0
	exits := make(map[wire.ExitPoint]int)
	lat := metrics.NewLatencyRecorder()
	for i, res := range results {
		if res.Class == labels[i] {
			correct++
		}
		exits[res.Exit]++
		lat.Record(res.Latency)
	}

	l := float64(exits[wire.ExitLocal]) / float64(n)
	fmt.Printf("classified %d samples in %v (%.1f samples/s, %d concurrent sessions, %d upstream replicas)\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), *concurrency, len(upstream))
	fmt.Printf("accuracy:            %.1f%%\n", 100*float64(correct)/float64(n))
	fmt.Printf("local exits:         %.1f%% (T=%.2f)\n", l*100, *threshold)
	if model.Cfg.UseEdge {
		fmt.Printf("edge exits:          %.1f%% (T=%.2f)\n", 100*float64(exits[wire.ExitEdge])/float64(n), *edgeT)
		fmt.Printf("cloud exits:         %.1f%%\n", 100*float64(exits[wire.ExitCloud])/float64(n))
	}
	fmt.Printf("latency mean/p95:    %v / %v\n", lat.Mean().Round(time.Microsecond), lat.Percentile(95).Round(time.Microsecond))
	perDev := float64(eng.PayloadBytes()) / float64(model.Cfg.Devices) / float64(n)
	fmt.Printf("payload per device:  %.1f B/sample (Eq. 1: %.1f B; raw offload: %d B)\n",
		perDev, model.Cfg.CommCostBytes(l), model.Cfg.RawOffloadBytes())
	if down := eng.DownDevices(); len(down) > 0 {
		fmt.Printf("devices marked down: %v\n", down)
	}
	return nil
}

// waitForMembers polls the versioned topology until every device slot
// is occupied, the window expires, or the run is interrupted. A partial
// membership at the deadline is reported but not fatal: the gateway
// classifies with whoever showed up.
func waitForMembers(ctx context.Context, eng *ddnn.Engine, window time.Duration) error {
	deadline := time.Now().Add(window)
	for {
		topo := eng.Topology()
		present := 0
		for _, p := range topo.Present {
			if p {
				present++
			}
		}
		if present == topo.Slots {
			fmt.Printf("all %d device slots registered (topology version %d)\n", topo.Slots, topo.Version)
			return nil
		}
		if time.Now().After(deadline) {
			fmt.Printf("proceeding with %d/%d device slots after %v (topology version %d)\n",
				present, topo.Slots, window, topo.Version)
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}
