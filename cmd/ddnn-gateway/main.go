// Command ddnn-gateway runs the local aggregator: it connects to the
// device and cloud nodes, drives classification sessions over the test
// set, and reports accuracy, exit distribution, latency and measured
// communication.
//
// Usage:
//
//	ddnn-gateway -model model.ddnn -devices 127.0.0.1:7001,...,127.0.0.1:7006 \
//	             -cloud 127.0.0.1:7100 [-threshold 0.8] [-samples 0] [-data-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-gateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-gateway", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "model.ddnn", "trained model file")
		devices   = fs.String("devices", "", "comma-separated device addresses, in device order")
		cloudAddr = fs.String("cloud", "127.0.0.1:7100", "cloud node address")
		threshold = fs.Float64("threshold", 0.8, "local exit entropy threshold T")
		samples   = fs.Int("samples", 0, "number of test samples to classify (0 = all)")
		dataSeed  = fs.Int64("data-seed", 1, "dataset seed (must match the devices)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := ddnn.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	addrs := strings.Split(*devices, ",")
	if len(addrs) != model.Cfg.Devices {
		return fmt.Errorf("model needs %d device addresses, got %d", model.Cfg.Devices, len(addrs))
	}
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Seed = *dataSeed
	_, test := ddnn.GenerateDataset(dcfg)

	gcfg := ddnn.DefaultGatewayConfig()
	gcfg.Threshold = *threshold
	gw, err := cluster.NewGateway(model, gcfg, transport.TCP{}, addrs, *cloudAddr, nil)
	if err != nil {
		return err
	}
	defer gw.Close()

	n := test.Len()
	if *samples > 0 && *samples < n {
		n = *samples
	}
	labels := test.Labels(nil)
	correct, localExits := 0, 0
	lat := metrics.NewLatencyRecorder()
	start := time.Now()
	for id := 0; id < n; id++ {
		res, err := gw.Classify(uint64(id))
		if err != nil {
			return fmt.Errorf("sample %d: %w", id, err)
		}
		if res.Class == labels[id] {
			correct++
		}
		if res.Exit == wire.ExitLocal {
			localExits++
		}
		lat.Record(res.Latency)
	}
	elapsed := time.Since(start)

	l := float64(localExits) / float64(n)
	fmt.Printf("classified %d samples in %v\n", n, elapsed.Round(time.Millisecond))
	fmt.Printf("accuracy:            %.1f%%\n", 100*float64(correct)/float64(n))
	fmt.Printf("local exits:         %.1f%% (T=%.2f)\n", l*100, *threshold)
	fmt.Printf("latency mean/p95:    %v / %v\n", lat.Mean().Round(time.Microsecond), lat.Percentile(95).Round(time.Microsecond))
	perDev := float64(gw.Meter.Total()) / float64(model.Cfg.Devices) / float64(n)
	fmt.Printf("payload per device:  %.1f B/sample (Eq. 1: %.1f B; raw offload: %d B)\n",
		perDev, model.Cfg.CommCostBytes(l), model.Cfg.RawOffloadBytes())
	if down := gw.DownDevices(); len(down) > 0 {
		fmt.Printf("devices marked down: %v\n", down)
	}
	return nil
}
