// Command ddnn-sim trains (or loads) a DDNN and runs the complete
// hierarchy in one process over in-memory links: device nodes, gateway
// with health monitoring, and cloud. It can inject device failures partway
// through to demonstrate detection, graceful degradation and recovery.
//
// Usage:
//
//	ddnn-sim [-model model.ddnn] [-epochs 25] [-threshold 0.8]
//	         [-fail 2,5] [-fail-at 0.33] [-recover-at 0.66] [-samples 0]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-sim", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "", "trained model file (empty: train now)")
		epochs    = fs.Int("epochs", 25, "training epochs when -model is empty")
		threshold = fs.Float64("threshold", 0.8, "local exit entropy threshold T")
		failList  = fs.String("fail", "", "comma-separated device indices to crash mid-run")
		failAt    = fs.Float64("fail-at", 0.33, "fraction of the run at which devices crash")
		recoverAt = fs.Float64("recover-at", 0.66, "fraction at which crashed devices recover (>1: never)")
		samples   = fs.Int("samples", 0, "number of test samples (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	dcfg := ddnn.DefaultDatasetConfig()
	train, test := ddnn.GenerateDataset(dcfg)

	var model *ddnn.Model
	if *modelPath != "" {
		m, err := ddnn.LoadModel(*modelPath)
		if err != nil {
			return err
		}
		model = m
		fmt.Printf("loaded %s\n", *modelPath)
	} else {
		model = ddnn.MustNewModel(ddnn.DefaultConfig())
		tc := ddnn.DefaultTrainConfig()
		tc.Epochs = *epochs
		fmt.Printf("training %d epochs...\n", *epochs)
		if _, err := model.Train(train, tc); err != nil {
			return err
		}
	}

	var failures []int
	if *failList != "" {
		for _, s := range strings.Split(*failList, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || d < 0 || d >= model.Cfg.Devices {
				return fmt.Errorf("bad -fail entry %q", s)
			}
			failures = append(failures, d)
		}
	}

	gcfg := ddnn.DefaultGatewayConfig()
	gcfg.Threshold = *threshold
	gcfg.DeviceTimeout = 500 * time.Millisecond
	gcfg.MaxFailures = 0 // leave detection to the health monitor
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	tr := transport.NewMem()
	sim, err := newSimWithTransport(model, test, gcfg, tr, logger)
	if err != nil {
		return err
	}
	defer sim.Close()

	addrs := make([]string, model.Cfg.Devices)
	for d := range addrs {
		addrs[d] = fmt.Sprintf("device-%d", d)
	}
	hm, err := sim.Gateway.StartHealthMonitor(tr, addrs, 50*time.Millisecond, 2)
	if err != nil {
		return err
	}
	defer hm.Stop()

	n := test.Len()
	if *samples > 0 && *samples < n {
		n = *samples
	}
	labels := test.Labels(nil)
	correct, localExits := 0, 0
	lat := metrics.NewLatencyRecorder()
	failPoint := int(*failAt * float64(n))
	recoverPoint := int(*recoverAt * float64(n))

	fmt.Printf("classifying %d samples (T=%.2f)...\n", n, *threshold)
	for id := 0; id < n; id++ {
		if id == failPoint && len(failures) > 0 {
			fmt.Printf("  [%d/%d] crashing devices %v\n", id, n, failures)
			for _, d := range failures {
				sim.Devices[d].SetFailed(true)
			}
		}
		if id == recoverPoint && len(failures) > 0 {
			fmt.Printf("  [%d/%d] recovering devices %v (down at this point: %v)\n",
				id, n, failures, sim.Gateway.DownDevices())
			for _, d := range failures {
				sim.Devices[d].SetFailed(false)
			}
		}
		res, err := sim.Gateway.Classify(uint64(id))
		if err != nil {
			return fmt.Errorf("sample %d: %w", id, err)
		}
		if res.Class == labels[id] {
			correct++
		}
		if res.Exit == wire.ExitLocal {
			localExits++
		}
		lat.Record(res.Latency)
	}

	l := float64(localExits) / float64(n)
	fmt.Printf("\naccuracy:           %.1f%%\n", 100*float64(correct)/float64(n))
	fmt.Printf("local exits:        %.1f%%\n", l*100)
	fmt.Printf("latency mean/p95:   %v / %v\n", lat.Mean().Round(time.Microsecond), lat.Percentile(95).Round(time.Microsecond))
	perDev := float64(sim.Gateway.Meter.Total()) / float64(model.Cfg.Devices) / float64(n)
	fmt.Printf("payload per device: %.1f B/sample (Eq. 1: %.1f B, raw offload: %d B)\n",
		perDev, model.Cfg.CommCostBytes(l), model.Cfg.RawOffloadBytes())
	if down := sim.Gateway.DownDevices(); len(down) > 0 {
		fmt.Printf("still down:         %v\n", down)
	}
	return nil
}

// newSimWithTransport mirrors ddnn.NewClusterSim but keeps the transport
// visible so the health monitor can dial probe connections over it.
func newSimWithTransport(m *ddnn.Model, ds *ddnn.Dataset, cfg ddnn.GatewayConfig, tr *transport.Mem, logger *slog.Logger) (*cluster.Sim, error) {
	return cluster.NewSim(m, ds, cfg, tr, logger)
}
