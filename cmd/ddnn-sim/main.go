// Command ddnn-sim trains (or loads) a DDNN and serves the complete
// hierarchy in one process over in-memory links through the Engine API:
// device nodes, gateway with health monitoring, the edge replicas for
// edge-tier models, and the cloud replicas, classifying many samples
// concurrently. It can inject device failures partway through to
// demonstrate detection, graceful degradation and recovery, and — with
// -replicas > 1 — crash an upper-tier replica mid-run to demonstrate
// health-aware failover.
//
// Usage:
//
//	ddnn-sim [-model model.ddnn] [-edge] [-epochs 25] [-threshold 0.8]
//	         [-edge-threshold 0.8] [-concurrency 8] [-replicas 1]
//	         [-fail 2,5] [-churn 1] [-fail-replica] [-fail-at 0.33]
//	         [-recover-at 0.66] [-samples 0]
//
// -fail crashes devices silently (the gateway discovers the loss through
// timeouts and probes); -churn instead deregisters them through the
// versioned topology (RemoveDevice) and re-admits them at -recover-at,
// so each change bumps the config version and takes effect on the next
// session without any detection lag.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cliutil"
	"github.com/ddnn/ddnn-go/internal/metrics"
	"github.com/ddnn/ddnn-go/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-sim", flag.ContinueOnError)
	var (
		modelPath   = fs.String("model", "", "trained model file (empty: train now)")
		useEdge     = fs.Bool("edge", false, "train with an edge tier (three-stage local→edge→cloud escalation)")
		epochs      = fs.Int("epochs", 25, "training epochs when -model is empty")
		threshold   = fs.Float64("threshold", 0.8, "local exit entropy threshold T")
		edgeT       = fs.Float64("edge-threshold", 0.8, "edge exit entropy threshold (edge-tier models)")
		concurrency = fs.Int("concurrency", 8, "concurrent classification sessions")
		replicas    = fs.Int("replicas", 1, "replicas of each upper tier (cloud, and edge with -edge)")
		failReplica = fs.Bool("fail-replica", false, "also crash upper-tier replica 0 at -fail-at and recover it at -recover-at (needs -replicas > 1)")
		failList    = fs.String("fail", "", "comma-separated device indices to crash mid-run")
		churnList   = fs.String("churn", "", "comma-separated device indices to deregister (RemoveDevice) at -fail-at and re-admit at -recover-at — membership churn through the versioned topology, not silent failure")
		failAt      = fs.Float64("fail-at", 0.33, "fraction of the run at which devices crash")
		recoverAt   = fs.Float64("recover-at", 0.66, "fraction at which crashed devices recover (>1: never)")
		samples     = fs.Int("samples", 0, "number of test samples (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be at least 1, got %d", *concurrency)
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be at least 1, got %d", *replicas)
	}
	if *failReplica && *replicas < 2 {
		return fmt.Errorf("-fail-replica needs -replicas of at least 2 so the survivors can take over")
	}

	// Parse the failure list before spending minutes on training; the
	// per-device range check follows once the model (and so the device
	// count) is known.
	failures, err := cliutil.ParseInts(*failList, 0)
	if err != nil {
		return fmt.Errorf("bad -fail: %w", err)
	}
	churned, err := cliutil.ParseInts(*churnList, 0)
	if err != nil {
		return fmt.Errorf("bad -churn: %w", err)
	}

	dcfg := ddnn.DefaultDatasetConfig()
	train, test := ddnn.GenerateDataset(dcfg)

	var model *ddnn.Model
	if *modelPath != "" {
		m, err := ddnn.LoadModel(*modelPath)
		if err != nil {
			return err
		}
		model = m
		fmt.Printf("loaded %s\n", *modelPath)
	} else {
		cfg := ddnn.DefaultConfig()
		cfg.UseEdge = *useEdge
		model = ddnn.MustNewModel(cfg)
		tc := ddnn.DefaultTrainConfig()
		tc.Epochs = *epochs
		fmt.Printf("training %d epochs...\n", *epochs)
		if _, err := model.Train(train, tc); err != nil {
			return err
		}
	}

	for _, d := range failures {
		if d >= model.Cfg.Devices {
			return fmt.Errorf("bad -fail entry %d: model has %d devices", d, model.Cfg.Devices)
		}
	}
	for _, d := range churned {
		if d >= model.Cfg.Devices {
			return fmt.Errorf("bad -churn entry %d: model has %d devices", d, model.Cfg.Devices)
		}
	}

	ctx := context.Background()
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	eng, err := ddnn.NewEngine(model, test,
		ddnn.WithThreshold(*threshold),
		ddnn.WithEdgeThreshold(*edgeT),
		ddnn.WithDeviceTimeout(500*time.Millisecond),
		ddnn.WithCloudTimeout(time.Second),
		ddnn.WithEdgeTimeout(2*time.Second),
		ddnn.WithMaxFailures(0), // leave detection to the health monitor
		ddnn.WithMaxConcurrency(*concurrency),
		ddnn.WithCloudReplicas(*replicas),
		ddnn.WithEdgeReplicas(*replicas),
		ddnn.WithLogger(logger))
	if err != nil {
		return err
	}
	defer eng.Close()

	hm, err := eng.StartHealthMonitor(ctx, 50*time.Millisecond, 2)
	if err != nil {
		return err
	}
	defer hm.Stop()

	n := test.Len()
	if *samples > 0 && *samples < n {
		n = *samples
	}
	labels := test.Labels(nil)
	correct := 0
	exits := make(map[wire.ExitPoint]int)
	lat := metrics.NewLatencyRecorder()
	failPoint := int(*failAt * float64(n))
	recoverPoint := int(*recoverAt * float64(n))

	total, healthy := eng.UpstreamReplicas()
	fmt.Printf("classifying %d samples (T=%.2f, %d concurrent sessions, %d/%d upstream replicas healthy)...\n",
		n, *threshold, *concurrency, healthy, total)
	start := time.Now()
	// Classify in windows of `concurrency` samples so failure injection
	// lands between windows at a well-defined sample index.
	for base := 0; base < n; base += *concurrency {
		if len(failures) > 0 && base <= failPoint && failPoint < base+*concurrency {
			fmt.Printf("  [%d/%d] crashing devices %v\n", base, n, failures)
			for _, d := range failures {
				eng.SetDeviceFailed(d, true)
			}
		}
		if len(churned) > 0 && base <= failPoint && failPoint < base+*concurrency {
			for _, d := range churned {
				v, err := eng.RemoveDevice(d)
				if err != nil {
					return fmt.Errorf("churn: remove device %d: %w", d, err)
				}
				fmt.Printf("  [%d/%d] device %d deregistered (topology version %d)\n", base, n, d, v)
			}
		}
		if *failReplica && base <= failPoint && failPoint < base+*concurrency {
			if model.Cfg.UseEdge {
				fmt.Printf("  [%d/%d] crashing edge replica 0 (of %d)\n", base, n, *replicas)
				eng.SetEdgeFailed(0, true)
			} else {
				fmt.Printf("  [%d/%d] crashing cloud replica 0 (of %d)\n", base, n, *replicas)
				eng.SetCloudFailed(0, true)
			}
		}
		if *failReplica && base <= recoverPoint && recoverPoint < base+*concurrency {
			fmt.Printf("  [%d/%d] recovering crashed replica 0\n", base, n)
			if model.Cfg.UseEdge {
				eng.SetEdgeFailed(0, false)
			} else {
				eng.SetCloudFailed(0, false)
			}
		}
		if len(churned) > 0 && base <= recoverPoint && recoverPoint < base+*concurrency {
			for _, d := range churned {
				v, err := eng.AdmitDevice(ctx, d)
				if err != nil {
					return fmt.Errorf("churn: re-admit device %d: %w", d, err)
				}
				fmt.Printf("  [%d/%d] device %d re-admitted (topology version %d)\n", base, n, d, v)
			}
		}
		if len(failures) > 0 && base <= recoverPoint && recoverPoint < base+*concurrency {
			fmt.Printf("  [%d/%d] recovering devices %v (down at this point: %v)\n",
				base, n, failures, eng.DownDevices())
			for _, d := range failures {
				eng.SetDeviceFailed(d, false)
			}
		}
		end := base + *concurrency
		if end > n {
			end = n
		}
		ids := make([]uint64, 0, end-base)
		for id := base; id < end; id++ {
			ids = append(ids, uint64(id))
		}
		results, err := eng.ClassifyBatch(ctx, ids)
		if err != nil {
			return fmt.Errorf("window at %d: %w", base, err)
		}
		for i, res := range results {
			if res.Class == labels[base+i] {
				correct++
			}
			exits[res.Exit]++
			lat.Record(res.Latency)
		}
	}
	elapsed := time.Since(start)

	l := float64(exits[wire.ExitLocal]) / float64(n)
	fmt.Printf("\nthroughput:         %.1f samples/s (%v total)\n", float64(n)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	fmt.Printf("accuracy:           %.1f%%\n", 100*float64(correct)/float64(n))
	fmt.Printf("local exits:        %.1f%%\n", l*100)
	if model.Cfg.UseEdge {
		fmt.Printf("edge exits:         %.1f%%\n", 100*float64(exits[wire.ExitEdge])/float64(n))
		fmt.Printf("cloud exits:        %.1f%%\n", 100*float64(exits[wire.ExitCloud])/float64(n))
	}
	fmt.Printf("latency mean/p95:   %v / %v\n", lat.Mean().Round(time.Microsecond), lat.Percentile(95).Round(time.Microsecond))
	perDev := float64(eng.PayloadBytes()) / float64(model.Cfg.Devices) / float64(n)
	fmt.Printf("payload per device: %.1f B/sample (Eq. 1: %.1f B, raw offload: %d B)\n",
		perDev, model.Cfg.CommCostBytes(l), model.Cfg.RawOffloadBytes())
	if down := eng.DownDevices(); len(down) > 0 {
		fmt.Printf("still down:         %v\n", down)
	}
	return nil
}
