// Command ddnn-device runs one end-device node: it loads a trained model,
// keeps only its own section in use, serves capture and feature-upload
// requests from a gateway, and feeds its sensor from the deterministic
// synthetic dataset (acting as the camera).
//
// Usage:
//
//	ddnn-device -model model.ddnn -device 0 -listen 127.0.0.1:7001 [-data-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-device:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-device", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "model.ddnn", "trained model file")
		device    = fs.Int("device", 0, "device index of this node")
		listen    = fs.String("listen", "127.0.0.1:7001", "listen address")
		dataSeed  = fs.Int64("data-seed", 1, "dataset seed (must match the gateway)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := ddnn.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	if *device < 0 || *device >= model.Cfg.Devices {
		return fmt.Errorf("device %d out of range [0,%d)", *device, model.Cfg.Devices)
	}
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Seed = *dataSeed
	_, test := ddnn.GenerateDataset(dcfg)

	node := cluster.NewDevice(model, *device, cluster.DatasetFeed(test, *device), nil)
	if err := node.Serve(transport.TCP{}, *listen); err != nil {
		return err
	}
	fmt.Printf("device %d serving on %s (section: %d B deployed)\n",
		*device, node.Addr(), model.DeviceMemoryBytes())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return node.Close()
}
