// Command ddnn-device runs one end-device node: it loads a trained model,
// keeps only its own section in use, serves capture and feature-upload
// requests from a gateway, and feeds its sensor from the deterministic
// synthetic dataset (acting as the camera).
//
// Usage:
//
//	ddnn-device -model model.ddnn -device 0 -listen 127.0.0.1:7001 [-data-seed 1]
//	            [-register 127.0.0.1:7200] [-node-id cam-lobby]
//
// With -register the node announces itself to a running gateway's
// registration plane (DeviceHello) after its listener is up, joining the
// hierarchy without a gateway restart, and deregisters (DeviceGoodbye)
// on SIGINT/SIGTERM so the gateway drops the slot cleanly instead of
// discovering the loss through timeouts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/transport"
	"github.com/ddnn/ddnn-go/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-device:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-device", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "model.ddnn", "trained model file")
		device    = fs.Int("device", 0, "device index of this node")
		listen    = fs.String("listen", "127.0.0.1:7001", "listen address")
		dataSeed  = fs.Int64("data-seed", 1, "dataset seed (must match the gateway)")
		register  = fs.String("register", "", "gateway registration address: announce this node (DeviceHello) after the listener is up, deregister on shutdown")
		nodeID    = fs.String("node-id", "", "stable node identity for registration (default device-<index>)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := ddnn.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	if *device < 0 || *device >= model.Cfg.Devices {
		return fmt.Errorf("device %d out of range [0,%d)", *device, model.Cfg.Devices)
	}
	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Seed = *dataSeed
	_, test := ddnn.GenerateDataset(dcfg)

	node := cluster.NewDevice(model, *device, cluster.DatasetFeed(test, *device), nil)
	if err := node.Serve(transport.TCP{}, *listen); err != nil {
		return err
	}
	fmt.Printf("device %d serving on %s (section: %d B deployed)\n",
		*device, node.Addr(), model.DeviceMemoryBytes())

	id := *nodeID
	if id == "" {
		id = fmt.Sprintf("device-%d", *device)
	}
	if *register != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		welcome, err := cluster.Register(ctx, transport.TCP{}, *register, &wire.DeviceHello{
			NodeID: id,
			Slot:   uint16(*device),
			Addr:   node.Addr(),
		})
		cancel()
		if err != nil {
			node.Close()
			return fmt.Errorf("register with %s: %w", *register, err)
		}
		fmt.Printf("registered with %s as slot %d/%d (topology version %d)\n",
			*register, welcome.Slot, welcome.Devices, welcome.ConfigVersion)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	if *register != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := cluster.Deregister(ctx, transport.TCP{}, *register, &wire.DeviceGoodbye{
			NodeID: id,
			Slot:   uint16(*device),
			Reason: "shutdown",
		})
		cancel()
		if err != nil {
			// Best-effort: the gateway will notice via timeouts anyway.
			fmt.Fprintf(os.Stderr, "ddnn-device: deregister: %v\n", err)
		} else {
			fmt.Printf("deregistered from %s\n", *register)
		}
	}
	return node.Close()
}
