// Command ddnn-serve runs the public HTTP front door over a DDNN
// serving engine: an authenticated, rate-limited, observable REST API
// (see docs/API.md) answering classify requests from the staged
// device→edge→cloud hierarchy.
//
// By default it trains (or loads) a model and serves a complete
// in-process cluster over in-memory links; with -devices/-cloud/-edge
// it attaches to already-running nodes over TCP instead (raw tensor
// uploads then answer 501 — remote devices own their sensors).
//
// Usage:
//
//	ddnn-serve [-listen 127.0.0.1:8080] [-model model.ddnn] [-edge]
//	           [-epochs 25] [-tokens tokens.txt] [-rate 50] [-burst 100]
//	           [-max-inflight 64] [-concurrency 16] [-batch 32]
//	           [-replicas 1] [-threshold 0.8] [-edge-threshold 0.8]
//	           [-devices host:port,...] [-cloud host:port] [-edge-addr host:port]
//	           [-tenant alice=0.5:0.7] [-register host:port]
//	           [-admin-tokens admin.txt] [-drain-timeout 10s]
//
// Without -tokens the API is open (every request runs as the
// "anonymous" client); production deployments should always pass a
// token file of "client:token" lines. SIGINT/SIGTERM drain gracefully:
// the listener closes, in-flight requests finish within -drain-timeout,
// and the process exits 0.
//
// -tenant (repeatable) gives the named client its own exit-threshold
// policy: that client's traffic classifies under name=localT[:edgeT]
// instead of the default -threshold/-edge-threshold, so one cluster
// serves applications with different accuracy/latency trade-offs.
// -register serves the device registration plane so devices can join
// and leave the hierarchy at runtime (see ddnn-device -register).
//
// -admin-tokens mounts the model lifecycle admin plane (POST/GET
// /v1/admin/models, POST /v1/admin/rollout — see docs/OPERATIONS.md)
// behind its own token class, separate from serving tokens. It
// requires the in-process engine: a rolling model reload fences,
// drains and canaries each replica through its registry, which only
// the in-process cluster exposes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/api"
	"github.com/ddnn/ddnn-go/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-serve:", err)
		os.Exit(1)
	}
}

// parseTenant parses one -tenant spec: name=localT[:edgeT]. With no
// edge threshold the local one applies to both exits.
func parseTenant(spec string) (string, ddnn.TenantConfig, error) {
	name, thresholds, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", ddnn.TenantConfig{}, fmt.Errorf("bad -tenant %q: want name=localT[:edgeT]", spec)
	}
	localStr, edgeStr, hasEdge := strings.Cut(thresholds, ":")
	local, err := strconv.ParseFloat(localStr, 64)
	if err != nil {
		return "", ddnn.TenantConfig{}, fmt.Errorf("bad -tenant %q local threshold: %w", spec, err)
	}
	edge := local
	if hasEdge {
		edge, err = strconv.ParseFloat(edgeStr, 64)
		if err != nil {
			return "", ddnn.TenantConfig{}, fmt.Errorf("bad -tenant %q edge threshold: %w", spec, err)
		}
	}
	return name, ddnn.TenantConfig{LocalThreshold: local, EdgeThreshold: edge}, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-serve", flag.ContinueOnError)
	var cloudAddrs, edgeAddrs, tenantSpecs cliutil.AddrList
	fs.Var(&cloudAddrs, "cloud", "cloud replica address to attach to (repeatable; with -devices)")
	fs.Var(&edgeAddrs, "edge-addr", "edge replica address to attach to (repeatable; with -devices, edge-tier models)")
	fs.Var(&tenantSpecs, "tenant", "per-tenant exit thresholds as name=localT[:edgeT] (repeatable); the tenant name is the authenticated client name from -tokens")
	var (
		listen       = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		modelPath    = fs.String("model", "", "trained model file (empty: train now)")
		useEdge      = fs.Bool("edge", false, "train with an edge tier when -model is empty")
		epochs       = fs.Int("epochs", 25, "training epochs when -model is empty")
		tokensPath   = fs.String("tokens", "", "token file of client:token lines (empty: open access)")
		adminTokens  = fs.String("admin-tokens", "", "token file for the model lifecycle admin plane (empty: admin endpoints absent); in-process engine only")
		rate         = fs.Float64("rate", 50, "per-client sustained requests/s (0: unlimited)")
		burst        = fs.Float64("burst", 0, "per-client burst depth (0: max(1, rate))")
		maxInflight  = fs.Int("max-inflight", api.DefaultMaxInFlight, "admitted in-flight requests before 503; load sheds to cheaper exits as this nears")
		concurrency  = fs.Int("concurrency", 16, "concurrent classification sessions")
		batch        = fs.Int("batch", ddnn.DefaultMaxBatch, "micro-batch size: coalesce up to this many samples per session (1 = per-sample)")
		replicas     = fs.Int("replicas", 1, "replicas of each upper tier (in-process engine only)")
		threshold    = fs.Float64("threshold", 0.8, "local exit entropy threshold T")
		edgeT        = fs.Float64("edge-threshold", 0.8, "edge exit entropy threshold (edge-tier models)")
		devices      = fs.String("devices", "", "attach to running device nodes at these comma-separated addresses instead of simulating in-process; with -register, fewer entries than the model has slots (or empty entries) leave those slots absent until a device registers")
		register     = fs.String("register", "", "serve the device registration plane on this address so devices join/leave at runtime (ddnn-device -register)")
		dataSeed     = fs.Int64("data-seed", 1, "dataset seed")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	logger.Info("compute kernels", "path", ddnn.KernelPath())

	var auth *api.Authenticator
	if *tokensPath != "" {
		a, err := api.LoadTokenFile(*tokensPath)
		if err != nil {
			return err
		}
		auth = a
		logger.Info("authentication enabled", "clients", a.Len())
	} else {
		logger.Warn("no -tokens file: API is open to unauthenticated clients")
	}

	dcfg := ddnn.DefaultDatasetConfig()
	dcfg.Seed = *dataSeed
	train, test := ddnn.GenerateDataset(dcfg)

	var model *ddnn.Model
	if *modelPath != "" {
		m, err := ddnn.LoadModel(*modelPath)
		if err != nil {
			return err
		}
		model = m
		logger.Info("model loaded", "path", *modelPath)
	} else {
		cfg := ddnn.DefaultConfig()
		cfg.UseEdge = *useEdge
		model = ddnn.MustNewModel(cfg)
		tc := ddnn.DefaultTrainConfig()
		tc.Epochs = *epochs
		logger.Info("training model", "epochs", *epochs)
		if _, err := model.Train(train, tc); err != nil {
			return err
		}
	}

	opts := []ddnn.Option{
		ddnn.WithThreshold(*threshold),
		ddnn.WithEdgeThreshold(*edgeT),
		ddnn.WithMaxConcurrency(*concurrency),
		ddnn.WithBatching(*batch, 0),
		ddnn.WithLogger(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))),
	}
	var eng *ddnn.Engine
	if *devices != "" {
		deviceAddrs := strings.Split(*devices, ",")
		upstream := []string(cloudAddrs)
		if model.Cfg.UseEdge {
			if len(edgeAddrs) == 0 {
				return fmt.Errorf("model has an edge tier; pass -edge-addr with the ddnn-edge address(es)")
			}
			upstream = edgeAddrs
		} else if len(cloudAddrs) == 0 {
			return fmt.Errorf("pass -cloud with the ddnn-cloud address(es)")
		}
		dialCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		e, err := ddnn.Connect(dialCtx, model, deviceAddrs, upstream, opts...)
		cancel()
		if err != nil {
			return err
		}
		eng = e
		logger.Info("attached to cluster", "devices", len(deviceAddrs), "upstream", len(upstream))
	} else {
		opts = append(opts, ddnn.WithCloudReplicas(*replicas), ddnn.WithEdgeReplicas(*replicas))
		e, err := ddnn.NewEngine(model, test, opts...)
		if err != nil {
			return err
		}
		eng = e
		logger.Info("in-process cluster started", "devices", model.Cfg.Devices, "replicas", *replicas)
	}
	defer eng.Close()

	if *register != "" {
		if err := eng.ServeRegistration(*register); err != nil {
			return err
		}
		logger.Info("registration plane serving", "addr", *register, "config_version", eng.ConfigVersion())
	}
	for _, spec := range tenantSpecs {
		name, tc, err := parseTenant(spec)
		if err != nil {
			return err
		}
		v, err := eng.SetTenant(name, tc)
		if err != nil {
			return err
		}
		logger.Info("tenant configured", "tenant", name,
			"local_threshold", tc.LocalThreshold, "edge_threshold", tc.EdgeThreshold, "config_version", v)
	}

	acfg := api.Config{
		Engine:      eng,
		Devices:     model.Cfg.Devices,
		Auth:        auth,
		RatePerSec:  *rate,
		Burst:       *burst,
		MaxInFlight: *maxInflight,
		Logger:      logger,
	}
	if *adminTokens != "" {
		if *devices != "" {
			return fmt.Errorf("-admin-tokens requires the in-process engine: rolling model reloads need registry access on every node")
		}
		aa, err := api.LoadTokenFile(*adminTokens)
		if err != nil {
			return err
		}
		acfg.AdminAuth = aa
		acfg.ModelAdmin = eng
		logger.Info("model admin plane enabled", "admins", aa.Len(), "model_version", eng.ModelVersion())
	}
	srv, err := api.NewServer(acfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let
	// in-flight requests finish within the deadline, and exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *listen)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain_timeout", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("drain deadline exceeded; closing remaining connections", "err", err)
		_ = httpSrv.Close()
	}
	<-errCh
	logger.Info("drained; goodbye")
	return nil
}
