// Command ddnn-edge runs the edge node — the middle tier of a three-tier
// device→edge→cloud hierarchy (Fig. 2 configs d/e). It loads a trained
// edge-tier model, serves escalation sessions from a gateway (aggregating
// the devices' bit-packed feature maps and running the edge ConvP section
// and exit head), answers mid-confidence samples at the edge exit, and
// forwards only hard samples' edge feature maps to the cloud node.
//
// Usage:
//
//	ddnn-edge -model model.ddnn -listen 127.0.0.1:7050 \
//	          -cloud 127.0.0.1:7100 [-cloud 127.0.0.1:7101 ...]
//
// The model must be trained with the edge tier (ddnn-train -edge).
// -cloud is repeatable (and accepts comma-separated lists): every
// address names one cloud replica, and the edge load-balances its
// escalations across the healthy replicas, failing over mid-session
// when one dies. Run several ddnn-edge processes on different ports to
// replicate the edge tier itself; the gateway pools them via its own
// repeatable -edge flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cliutil"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-edge:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-edge", flag.ContinueOnError)
	var cloudAddrs cliutil.AddrList
	fs.Var(&cloudAddrs, "cloud", "cloud replica address (repeatable; default 127.0.0.1:7100)")
	var (
		modelPath    = fs.String("model", "model.ddnn", "trained edge-tier model file")
		listen       = fs.String("listen", "127.0.0.1:7050", "listen address for the gateway")
		cloudTimeout = fs.Duration("cloud-timeout", 5*time.Second, "edge→cloud round trip bound")
		noFallback   = fs.Bool("no-fallback", false, "abort escalated sessions when the cloud is down instead of answering at the edge")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight classifications")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := ddnn.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	node, err := cluster.NewEdge(model, cluster.EdgeConfig{
		CloudTimeout:  *cloudTimeout,
		CloudFallback: !*noFallback,
	}, nil)
	if err != nil {
		return err
	}
	if len(cloudAddrs) == 0 {
		cloudAddrs = cliutil.AddrList{"127.0.0.1:7100"}
	}
	dialCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = node.ConnectCloud(dialCtx, transport.TCP{}, cloudAddrs...)
	cancel()
	if err != nil {
		return err
	}
	if err := node.Serve(transport.TCP{}, *listen); err != nil {
		return err
	}
	fmt.Printf("edge serving on %s, escalating to %d cloud replica(s) at %s (%d devices, %d edge filters, %v edge aggregation)\n",
		node.Addr(), len(cloudAddrs), strings.Join(cloudAddrs, ","), model.Cfg.Devices, model.Cfg.EdgeFilters, model.Cfg.EdgeAgg)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Drain instead of closing abruptly: stop accepting, let in-flight
	// classifications (and their cloud escalations) answer, then tear
	// down. A drain-deadline overrun is reported but not an error.
	fmt.Printf("shutting down (draining up to %v)\n", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := node.Drain(ctx); err != nil {
		fmt.Println("drain deadline exceeded; closed with sessions in flight")
	}
	return nil
}
