// Command ddnn-edge runs the edge node — the middle tier of a three-tier
// device→edge→cloud hierarchy (Fig. 2 configs d/e). It loads a trained
// edge-tier model, serves escalation sessions from a gateway (aggregating
// the devices' bit-packed feature maps and running the edge ConvP section
// and exit head), answers mid-confidence samples at the edge exit, and
// forwards only hard samples' edge feature maps to the cloud node.
//
// Usage:
//
//	ddnn-edge -model model.ddnn -listen 127.0.0.1:7050 -cloud 127.0.0.1:7100
//
// The model must be trained with the edge tier (ddnn-train -edge).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/cluster"
	"github.com/ddnn/ddnn-go/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddnn-edge:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddnn-edge", flag.ContinueOnError)
	var (
		modelPath    = fs.String("model", "model.ddnn", "trained edge-tier model file")
		listen       = fs.String("listen", "127.0.0.1:7050", "listen address for the gateway")
		cloudAddr    = fs.String("cloud", "127.0.0.1:7100", "cloud node address")
		cloudTimeout = fs.Duration("cloud-timeout", 5*time.Second, "edge→cloud round trip bound")
		noFallback   = fs.Bool("no-fallback", false, "abort escalated sessions when the cloud is down instead of answering at the edge")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := ddnn.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	node, err := cluster.NewEdge(model, cluster.EdgeConfig{
		CloudTimeout:  *cloudTimeout,
		CloudFallback: !*noFallback,
	}, nil)
	if err != nil {
		return err
	}
	dialCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = node.ConnectCloud(dialCtx, transport.TCP{}, *cloudAddr)
	cancel()
	if err != nil {
		return err
	}
	if err := node.Serve(transport.TCP{}, *listen); err != nil {
		return err
	}
	fmt.Printf("edge serving on %s, escalating to cloud at %s (%d devices, %d edge filters, %v edge aggregation)\n",
		node.Addr(), *cloudAddr, model.Cfg.Devices, model.Cfg.EdgeFilters, model.Cfg.EdgeAgg)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return node.Close()
}
