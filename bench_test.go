// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV), plus micro-benchmarks of the substrate operations. The experiment
// benchmarks run with experiments.QuickOptions (reduced epochs/dataset) so
// a full `go test -bench=.` pass completes in minutes on one core; the
// recorded full-scale results live in EXPERIMENTS.md and are regenerated
// with cmd/ddnn-bench.
package ddnn_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	ddnn "github.com/ddnn/ddnn-go"
	"github.com/ddnn/ddnn-go/internal/agg"
	"github.com/ddnn/ddnn-go/internal/bnn"
	"github.com/ddnn/ddnn-go/internal/branchy"
	"github.com/ddnn/ddnn-go/internal/core"
	"github.com/ddnn/ddnn-go/internal/dataset"
	"github.com/ddnn/ddnn-go/internal/experiments"
	"github.com/ddnn/ddnn-go/internal/nn"
	"github.com/ddnn/ddnn-go/internal/tensor"
	"github.com/ddnn/ddnn-go/internal/wire"
)

// sharedRunner caches trained quick-scale models across the experiment
// benchmarks, mirroring how cmd/ddnn-bench shares them across experiments.
var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

func quickRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		r, err := experiments.NewRunner(experiments.QuickOptions())
		if err != nil {
			panic(err)
		}
		runner = r
	})
	return runner
}

// BenchmarkTableIAggregationSchemes regenerates Table I: local/cloud
// accuracy for all nine aggregation-scheme combinations (E1).
func BenchmarkTableIAggregationSchemes(b *testing.B) {
	b.ReportAllocs()
	r := quickRunner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatalf("got %d rows, want 9", len(rows))
		}
	}
}

// BenchmarkTableIIThresholdSweep regenerates Table II: exit threshold vs
// local exit %, overall accuracy and Eq. (1) communication (E2).
func BenchmarkTableIIThresholdSweep(b *testing.B) {
	b.ReportAllocs()
	r := quickRunner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.ThresholdSweep([]float64{0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		if rows[len(rows)-1].CommBytes != 12 {
			b.Fatalf("T=1 comm = %g B, want 12 (Eq. 1 first term)", rows[len(rows)-1].CommBytes)
		}
	}
}

// BenchmarkFigure6ClassDistribution regenerates the Fig. 6 dataset
// histogram (E3).
func BenchmarkFigure6ClassDistribution(b *testing.B) {
	b.ReportAllocs()
	r := quickRunner(b)
	for i := 0; i < b.N; i++ {
		stats := r.ClassDistribution()
		if len(stats) != dataset.NumDevices {
			b.Fatalf("got %d devices, want %d", len(stats), dataset.NumDevices)
		}
	}
}

// BenchmarkFigure7ThresholdCurve regenerates the dense Fig. 7 sweep (E4).
func BenchmarkFigure7ThresholdCurve(b *testing.B) {
	b.ReportAllocs()
	r := quickRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.ThresholdSweep(branchy.Grid(20)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8DeviceScaling regenerates Fig. 8: accuracy as devices
// are added worst-to-best (E5).
func BenchmarkFigure8DeviceScaling(b *testing.B) {
	b.ReportAllocs()
	r := quickRunner(b)
	for i := 0; i < b.N; i++ {
		points, err := r.DeviceScaling()
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != dataset.NumDevices {
			b.Fatalf("got %d points, want %d", len(points), dataset.NumDevices)
		}
	}
}

// BenchmarkFigure9CloudOffloading regenerates Fig. 9: accuracy vs
// communication as the device model grows (E6).
func BenchmarkFigure9CloudOffloading(b *testing.B) {
	b.ReportAllocs()
	r := quickRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.CloudOffloading([]int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10FaultTolerance regenerates Fig. 10: accuracy with each
// single device failed (E7).
func BenchmarkFigure10FaultTolerance(b *testing.B) {
	b.ReportAllocs()
	r := quickRunner(b)
	for i := 0; i < b.N; i++ {
		points, err := r.FaultTolerance()
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != dataset.NumDevices {
			b.Fatalf("got %d points, want %d", len(points), dataset.NumDevices)
		}
	}
}

// BenchmarkCommunicationReduction regenerates the §IV-H comparison on a
// live in-process cluster (E8).
func BenchmarkCommunicationReduction(b *testing.B) {
	b.ReportAllocs()
	r := quickRunner(b)
	for i := 0; i < b.N; i++ {
		rep, err := r.CommunicationReduction(0.8, 40)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Reduction <= 1 {
			b.Fatalf("reduction %.1fx, want > 1x", rep.Reduction)
		}
	}
}

// --- Engine serving benchmarks ---

// serveBenchModel trains one quick-scale model shared across the serving
// benchmarks; each benchmark builds its own Engine over it.
var (
	serveBenchModelOnce sync.Once
	serveBenchModel     *ddnn.Model
	serveBenchTest      *ddnn.Dataset

	serveBenchOnce sync.Once
	serveBenchEng  *ddnn.Engine
)

func serveBenchFixture(b *testing.B) (*ddnn.Model, *ddnn.Dataset) {
	b.Helper()
	serveBenchModelOnce.Do(func() {
		dcfg := ddnn.DefaultDatasetConfig()
		dcfg.Train, dcfg.Test = 200, 60
		train, test := ddnn.GenerateDataset(dcfg)
		cfg := ddnn.DefaultConfig()
		cfg.CloudFilters = 8
		m := ddnn.MustNewModel(cfg)
		tc := ddnn.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := m.Train(train, tc); err != nil {
			panic(err)
		}
		serveBenchModel, serveBenchTest = m, test
	})
	return serveBenchModel, serveBenchTest
}

func serveEngine(b *testing.B) (*ddnn.Engine, int) {
	b.Helper()
	m, test := serveBenchFixture(b)
	serveBenchOnce.Do(func() {
		// Simulated §IV-B link profiles make the benchmark mirror a real
		// deployment: concurrent sessions overlap link latency.
		eng, err := ddnn.NewEngine(m, test,
			ddnn.WithMaxConcurrency(16),
			ddnn.WithSimulatedLinks(ddnn.DeviceToGatewayLink, ddnn.GatewayToCloudLink))
		if err != nil {
			panic(err)
		}
		serveBenchEng = eng
	})
	return serveBenchEng, serveBenchTest.Len()
}

// BenchmarkEngineClassifySerial measures single-flight serving: one
// session at a time, the old facade's only mode.
func BenchmarkEngineClassifySerial(b *testing.B) {
	b.ReportAllocs()
	eng, n := serveEngine(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Classify(ctx, uint64(i%n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineClassifyConcurrent measures multi-session serving
// throughput: RunParallel keeps many sessions in flight, which the Engine
// multiplexes over the same cluster links. Compare ns/op against
// BenchmarkEngineClassifySerial for the concurrency speedup.
func BenchmarkEngineClassifyConcurrent(b *testing.B) {
	b.ReportAllocs()
	eng, n := serveEngine(b)
	ctx := context.Background()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := uint64(rand.Int63())
		for pb.Next() {
			id++
			if _, err := eng.Classify(ctx, id%uint64(n)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineServeByBatch measures full-test-set serving throughput
// at micro-batch sizes 1 and 32 under the default §IV-B link profiles.
// Compare ns/op between the sub-benchmarks for the batching speedup: one
// batched session pays wire framing and conv/GEMM dispatch once for the
// whole batch, so batch 32 should sustain well over 2x the throughput of
// batch 1 (the per-sample path).
func BenchmarkEngineServeByBatch(b *testing.B) {
	b.ReportAllocs()
	m, test := serveBenchFixture(b)
	ids := make([]uint64, test.Len())
	for i := range ids {
		ids[i] = uint64(i)
	}
	for _, batch := range []int{1, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := ddnn.NewEngine(m, test,
				ddnn.WithMaxConcurrency(16),
				ddnn.WithBatching(batch, 0),
				ddnn.WithSimulatedLinks(ddnn.DeviceToGatewayLink, ddnn.GatewayToCloudLink))
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.ClassifyBatch(ctx, ids); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(ids))*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkEngineClassifyCollector measures the adaptive micro-batch
// collector under concurrent load: parallel Classify callers coalesce
// into shared sessions (max batch 32, 2 ms linger).
func BenchmarkEngineClassifyCollector(b *testing.B) {
	b.ReportAllocs()
	m, test := serveBenchFixture(b)
	eng, err := ddnn.NewEngine(m, test,
		ddnn.WithMaxConcurrency(16),
		ddnn.WithBatching(32, 0),
		ddnn.WithSimulatedLinks(ddnn.DeviceToGatewayLink, ddnn.GatewayToCloudLink))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	n := uint64(test.Len())
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := uint64(rand.Int63())
		for pb.Next() {
			id++
			if _, err := eng.Classify(ctx, id%n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- substrate micro-benchmarks ---

// BenchmarkDeviceSectionInference measures one end device's per-frame
// cost: ConvP block + exit head on a single 3×32×32 frame.
func BenchmarkDeviceSectionInference(b *testing.B) {
	b.ReportAllocs()
	m := core.MustNewModel(core.DefaultConfig())
	x := tensor.New(1, 3, 32, 32)
	x.FillUniform(rand.New(rand.NewSource(1)), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DeviceForward(0, x)
	}
}

// BenchmarkCloudSectionInference measures the cloud's per-sample cost:
// aggregation of six uploaded feature maps plus the upper NN layers.
func BenchmarkCloudSectionInference(b *testing.B) {
	b.ReportAllocs()
	m := core.MustNewModel(core.DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	feats := make([]*tensor.Tensor, m.Cfg.Devices)
	for d := range feats {
		feats[d] = tensor.New(1, m.Cfg.DeviceFilters, 16, 16)
		feats[d].FillUniform(rng, -1, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CloudForward(feats, nil)
	}
}

// BenchmarkTrainStep measures one joint forward/backward pass over a
// 32-sample batch (all six devices plus the cloud).
func BenchmarkTrainStep(b *testing.B) {
	b.ReportAllocs()
	dcfg := dataset.DefaultConfig()
	dcfg.Train, dcfg.Test = 64, 8
	train, _ := dataset.MustGenerate(dcfg)
	m := core.MustNewModel(core.DefaultConfig())
	idx := make([]int, 32)
	for i := range idx {
		idx[i] = i
	}
	xs := train.AllDeviceBatches(m.Cfg.Devices, idx)
	labels := train.Labels(idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrads(m.Params())
		m.TrainStep(xs, labels)
	}
}

// BenchmarkConvPForward measures the fused binary convolution-pool block
// on a device-sized input.
func BenchmarkConvPForward(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	blk := bnn.NewConvP(rng, "bench", 3, 4)
	x := tensor.New(1, 3, 32, 32)
	x.FillUniform(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.Forward(x, false)
	}
}

// BenchmarkPackSigns measures eBNN bit-packing of one feature map
// (4×16×16 bits → 128 B), the upload payload of Eq. (1).
func BenchmarkPackSigns(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	t := tensor.New(1, 4, 16, 16)
	t.FillUniform(rng, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bnn.PackSigns(t)
	}
}

// BenchmarkUnpackSigns measures the cloud-side unpacking.
func BenchmarkUnpackSigns(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	t := tensor.New(1, 4, 16, 16)
	t.FillUniform(rng, -1, 1)
	bits := bnn.PackSigns(t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bnn.UnpackSigns(bits, 1, 4, 16, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregators measures the three aggregation schemes over six
// device feature maps.
func BenchmarkAggregators(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	inputs := make([]*tensor.Tensor, 6)
	for d := range inputs {
		inputs[d] = tensor.New(1, 4, 16, 16)
		inputs[d].FillUniform(rng, -1, 1)
	}
	b.Run("MP", func(b *testing.B) {
		b.ReportAllocs()
		a := agg.NewMax()
		for i := 0; i < b.N; i++ {
			a.Forward(inputs, nil, false)
		}
	})
	b.Run("AP", func(b *testing.B) {
		b.ReportAllocs()
		a := agg.NewAvg()
		for i := 0; i < b.N; i++ {
			a.Forward(inputs, nil, false)
		}
	})
	b.Run("CC", func(b *testing.B) {
		b.ReportAllocs()
		a := agg.NewConcatFeat(6)
		for i := 0; i < b.N; i++ {
			a.Forward(inputs, nil, false)
		}
	})
}

// BenchmarkWireFeatureUpload measures encode+decode of the Eq. (1) upload
// message (128-B payload).
func BenchmarkWireFeatureUpload(b *testing.B) {
	b.ReportAllocs()
	msg := &wire.FeatureUpload{SampleID: 1, Device: 2, F: 4, H: 16, W: 16, Bits: make([]byte, 128)}
	var buf loopBuffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := wire.Encode(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNormalizedEntropy measures the exit-confidence criterion.
func BenchmarkNormalizedEntropy(b *testing.B) {
	b.ReportAllocs()
	probs := []float32{0.7, 0.2, 0.1}
	for i := 0; i < b.N; i++ {
		nn.NormalizedEntropy(probs)
	}
}

// BenchmarkMatMul measures the core GEMM on a cloud-exit-head-sized
// multiply.
func BenchmarkMatMul(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(32, 256)
	w := tensor.New(256, 64)
	x.FillUniform(rng, -1, 1)
	w.FillUniform(rng, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, w)
	}
}

// --- compute-kernel micro-benchmarks (naive vs optimized) ---

// BenchmarkIm2col measures lowering one device frame (3×32×32, 3×3
// kernel, stride 1, pad 1) into its GEMM operand with a reused buffer.
func BenchmarkIm2col(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(1, 3, 32, 32)
	x.FillUniform(rng, 0, 1)
	rows, cols := tensor.Im2colShape(x, 3, 1, 1)
	buf := make([]float32, rows*cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2colInto(buf, x, 0, 3, 1, 1)
	}
}

// BenchmarkMatMulNaive is the reference ikj kernel on the same shapes as
// BenchmarkMatMul; the ratio is the register-tiling speedup.
func BenchmarkMatMulNaive(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(32, 256)
	w := tensor.New(256, 64)
	x.FillUniform(rng, -1, 1)
	w.FillUniform(rng, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulNaive(x, w)
	}
}

// BenchmarkXnorDot compares the word-wide (64-bit lanes, deployed)
// kernel against the byte-wide reference on a device-exit-sized dot
// (1024 weights, the 4×16×16 feature map against one weight column).
func BenchmarkXnorDot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float32, 1024)
	w := make([]float32, 1024)
	for i := range v {
		v[i] = float32(rng.Intn(2)*2 - 1)
		w[i] = float32(rng.Intn(2)*2 - 1)
	}
	pv, pw := bnn.PackVector(v), bnn.PackVector(w)
	vb, wb := pv.Bytes(), pw.Bytes()
	b.Run("word", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bnn.XnorDot(pv, pw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("byte", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bnn.XnorDotBytes(1024, vb, wb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPackedLinear measures the deployed XNOR-popcount exit head
// (1024→3): Forward allocates its output, ForwardInto reuses one.
func BenchmarkPackedLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := bnn.NewBinaryLinear(rng, "bench", 1024, 3)
	p := bnn.Deploy(l)
	v := make([]float32, 1024)
	for i := range v {
		v[i] = float32(rng.Intn(2)*2 - 1)
	}
	x := bnn.PackVector(v)
	b.Run("forward", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.Forward(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		dst := make([]int, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.ForwardInto(dst, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeviceForward compares the unpooled section forward (fresh
// tensors every call) against the pooled serving path (zero-ish
// steady-state allocation).
func BenchmarkDeviceForward(b *testing.B) {
	m := core.MustNewModel(core.DefaultConfig())
	x := tensor.New(1, 3, 32, 32)
	x.FillUniform(rand.New(rand.NewSource(1)), 0, 1)
	b.Run("unpooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.DeviceForward(0, x)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		pool := tensor.NewPool()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			feat, exitVec := m.DeviceForwardPooled(0, x, pool)
			pool.Put(exitVec)
			pool.Put(feat)
		}
	})
}

// loopBuffer is a minimal in-memory read/write buffer for the wire bench.
type loopBuffer struct {
	data []byte
	off  int
}

func (l *loopBuffer) Write(p []byte) (int, error) {
	l.data = append(l.data, p...)
	return len(p), nil
}

func (l *loopBuffer) Read(p []byte) (int, error) {
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

func (l *loopBuffer) Reset() { l.data, l.off = l.data[:0], 0 }
