package ddnn_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	ddnn "github.com/ddnn/ddnn-go"
)

// The serving tests share one small trained model; they exercise the
// Engine's concurrency and error semantics, not model quality.
var (
	serveOnce  sync.Once
	serveModel *ddnn.Model
	serveTest  *ddnn.Dataset
)

func serveFixture(t *testing.T) (*ddnn.Model, *ddnn.Dataset) {
	t.Helper()
	serveOnce.Do(func() {
		dcfg := ddnn.DefaultDatasetConfig()
		dcfg.Train, dcfg.Test = 120, 40
		train, test := ddnn.GenerateDataset(dcfg)
		cfg := ddnn.DefaultConfig()
		cfg.CloudFilters = 8
		m := ddnn.MustNewModel(cfg)
		tc := ddnn.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := m.Train(train, tc); err != nil {
			panic(err)
		}
		serveModel, serveTest = m, test
	})
	return serveModel, serveTest
}

func newServeEngine(t *testing.T, opts ...ddnn.Option) *ddnn.Engine {
	t.Helper()
	model, test := serveFixture(t)
	eng, err := ddnn.NewEngine(model, test, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestEngineConcurrentSessions drives well over eight concurrent Classify
// sessions through the in-memory transport. Run under -race (CI does) it
// proves the whole serving path — wire mux, gateway, device and cloud
// nodes, shared model — is data-race free, and it checks every session's
// decision against the single-flight result.
func TestEngineConcurrentSessions(t *testing.T) {
	eng := newServeEngine(t, ddnn.WithMaxConcurrency(8))
	ctx := context.Background()

	const samples = 10
	want := make([]ddnn.Result, samples)
	for id := 0; id < samples; id++ {
		res, err := eng.Classify(ctx, uint64(id))
		if err != nil {
			t.Fatalf("baseline sample %d: %v", id, err)
		}
		want[id] = res
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*samples)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := 0; id < samples; id++ {
				res, err := eng.Classify(ctx, uint64(id))
				if err != nil {
					errs <- fmt.Errorf("worker %d sample %d: %w", w, id, err)
					return
				}
				if res.Class != want[id].Class || res.Exit != want[id].Exit {
					errs <- fmt.Errorf("worker %d sample %d: class/exit %d/%v, want %d/%v",
						w, id, res.Class, res.Exit, want[id].Class, want[id].Exit)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineClassifyBatchOrdersResults(t *testing.T) {
	eng := newServeEngine(t, ddnn.WithMaxConcurrency(4))
	ids := []uint64{5, 0, 9, 3, 7, 1, 8, 2}
	results, err := eng.ClassifyBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("got %d results for %d ids", len(results), len(ids))
	}
	for i, res := range results {
		if res.SampleID != ids[i] {
			t.Errorf("result %d is for sample %d, want %d", i, res.SampleID, ids[i])
		}
	}
}

func TestEngineCancellationSurfacesTypedError(t *testing.T) {
	eng := newServeEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.Classify(ctx, 0)
	if !errors.Is(err, ddnn.ErrCanceled) {
		t.Errorf("err = %v, want ddnn.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v must also wrap ctx.Err() (context.Canceled)", err)
	}
}

func TestEngineDeadlineSurfacesTypedError(t *testing.T) {
	eng := newServeEngine(t)
	// Crash every device so the session can only end via the deadline.
	model, _ := serveFixture(t)
	for d := 0; d < model.Cfg.Devices; d++ {
		eng.SetDeviceFailed(d, true)
	}
	t.Cleanup(func() {
		for d := 0; d < model.Cfg.Devices; d++ {
			eng.SetDeviceFailed(d, false)
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := eng.Classify(ctx, 0)
	if !errors.Is(err, ddnn.ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ddnn.ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v must also wrap ctx.Err() (context.DeadlineExceeded)", err)
	}
}

func TestEngineClosedError(t *testing.T) {
	model, test := serveFixture(t)
	eng, err := ddnn.NewEngine(model, test)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := eng.Classify(context.Background(), 0); !errors.Is(err, ddnn.ErrEngineClosed) {
		t.Errorf("err = %v, want ddnn.ErrEngineClosed", err)
	}
}

func TestEngineFaultToleranceUnderConcurrency(t *testing.T) {
	eng := newServeEngine(t,
		ddnn.WithDeviceTimeout(200*time.Millisecond),
		ddnn.WithMaxFailures(0),
		ddnn.WithMaxConcurrency(8))
	eng.SetDeviceFailed(2, true)
	ids := make([]uint64, 8)
	for i := range ids {
		ids[i] = uint64(i)
	}
	results, err := eng.ClassifyBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Present[2] {
			t.Errorf("result %d: dead device marked present", i)
		}
	}
}

// TestEngineBatchingMatchesPerSample checks the public batching option:
// micro-batched serving must produce exactly the per-sample results, in
// order, and report wire traffic in both directions.
func TestEngineBatchingMatchesPerSample(t *testing.T) {
	model, test := serveFixture(t)
	plain, err := ddnn.NewEngine(model, test)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	batched, err := ddnn.NewEngine(model, test,
		ddnn.WithBatching(8, 2*time.Millisecond),
		ddnn.WithMaxConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	ids := make([]uint64, test.Len())
	for i := range ids {
		ids[i] = uint64(i)
	}
	want, err := plain.ClassifyBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	got, err := batched.ClassifyBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].SampleID != want[i].SampleID || got[i].Class != want[i].Class || got[i].Exit != want[i].Exit {
			t.Errorf("sample %d: batched (id %d class %d exit %v) != per-sample (id %d class %d exit %v)",
				i, got[i].SampleID, got[i].Class, got[i].Exit, want[i].SampleID, want[i].Class, want[i].Exit)
		}
	}
	if up, down := batched.WireBytesUp(), batched.WireBytesDown(); up <= 0 || down <= 0 {
		t.Errorf("wire traffic not measured: up %d down %d", up, down)
	}
}
